"""CLI surface: every subcommand runs and prints what it promises."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv: str) -> str:
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_list(self, capsys):
        out = run_cli(capsys, "list")
        assert "intruder" in out
        assert "labyrinth" in out
        assert "gating-aware" in out
        assert "momentum" in out
        assert "paper-fig7" in out

    def test_run(self, capsys):
        out = run_cli(
            capsys, "run", "counter", "--scale", "tiny", "--procs", "2",
            "--seed", "3",
        )
        assert "Run report — counter" in out
        assert "gating:" in out

    def test_run_ungated_with_serial_check(self, capsys):
        out = run_cli(
            capsys, "run", "counter", "--scale", "tiny", "--procs", "2",
            "--no-gating", "--check-serial",
        )
        assert "ungated" in out
        assert "serializability: OK" in out

    def test_run_csv_export(self, capsys, tmp_path):
        path = tmp_path / "timelines.csv"
        out = run_cli(
            capsys, "run", "counter", "--scale", "tiny", "--procs", "2",
            "--csv-timelines", str(path),
        )
        assert path.exists()
        header = path.read_text().splitlines()[0]
        assert header == "proc,start,end,state"
        assert str(path) in out

    def test_compare(self, capsys):
        out = run_cli(
            capsys, "compare", "counter", "--scale", "tiny", "--procs", "2",
        )
        assert "Eq. 6" in out
        assert "speed-up" in out

    def test_evaluate_tiny(self, capsys):
        out = run_cli(
            capsys, "evaluate", "--scale", "tiny", "--grid", "2",
            "--seed", "4",
        )
        assert "Fig. 4" in out and "Fig. 5" in out and "Fig. 6" in out
        assert "averages over 3 points" in out

    def test_sweep(self, capsys):
        out = run_cli(
            capsys, "sweep", "counter", "--scale", "tiny", "--procs", "2",
            "--w0-values", "4", "16",
        )
        assert "Fig. 7" in out
        assert "16" in out

    def test_cache_power(self, capsys):
        out = run_cli(capsys, "cache-power")
        assert "Fig. 3" in out
        assert "105.000" in out

    def test_momentum_cm_via_cli(self, capsys):
        out = run_cli(
            capsys, "run", "counter", "--scale", "tiny", "--procs", "2",
            "--cm", "momentum",
        )
        assert "Run report" in out


class TestExecFlags:
    def test_sweep_parallel_matches_serial(self, capsys):
        argv = ("sweep", "counter", "--scale", "tiny", "--procs", "2",
                "--w0-values", "4", "16")
        serial = run_cli(capsys, *argv, "--jobs", "1")
        parallel = run_cli(capsys, *argv, "--jobs", "2")
        assert parallel == serial

    def test_sweep_cached_second_run(self, capsys, tmp_path):
        argv = ("sweep", "counter", "--scale", "tiny", "--procs", "2",
                "--w0-values", "4", "--cache-dir", str(tmp_path), "--progress")
        first = run_cli(capsys, *argv)
        code = main(list(argv))
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == first
        assert "executed 0" in captured.err
        assert "2 cache hit(s)" in captured.err

    def test_no_cache_flag_re_executes(self, capsys, tmp_path):
        argv = ("compare", "counter", "--scale", "tiny", "--procs", "2",
                "--cache-dir", str(tmp_path))
        run_cli(capsys, *argv)
        assert main([*argv, "--no-cache", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "Eq. 6" in captured.out
        assert "executed 2" in captured.err

    def test_evaluate_with_workers(self, capsys):
        out = run_cli(
            capsys, "evaluate", "--scale", "tiny", "--grid", "2",
            "--seed", "4", "--jobs", "2",
        )
        assert "Fig. 4" in out and "averages over 3 points" in out

    def test_exec_status(self, capsys, tmp_path):
        run_cli(
            capsys, "sweep", "counter", "--scale", "tiny", "--procs", "2",
            "--w0-values", "4", "--cache-dir", str(tmp_path),
        )
        out = run_cli(capsys, "exec-status", "--cache-dir", str(tmp_path),
                      "--verbose")
        assert "2 entries" in out
        assert "counter: 2 cached run(s)" in out
        assert "ungated" in out

    def test_exec_status_empty_store(self, capsys, tmp_path):
        out = run_cli(capsys, "exec-status", "--cache-dir", str(tmp_path))
        assert "0 entries" in out

    def test_exec_status_missing_dir_is_an_error(self, capsys, tmp_path):
        missing = tmp_path / "typo-cahce"
        assert main(["exec-status", "--cache-dir", str(missing)]) == 1
        assert "no result store" in capsys.readouterr().err
        assert not missing.exists()

    def test_exec_status_prune(self, capsys, tmp_path):
        from repro.exec.store import ResultStore

        run_cli(
            capsys, "sweep", "counter", "--scale", "tiny", "--procs", "2",
            "--w0-values", "4", "8", "--cache-dir", str(tmp_path),
        )
        store = ResultStore(tmp_path)
        victim = next(digest for digest, _label in store.labels())
        store.invalidate(victim)
        size_before = store.path.stat().st_size
        out = run_cli(capsys, "exec-status", "--cache-dir", str(tmp_path),
                      "--prune")
        assert "pruned 2 dead line(s)" in out  # dead record + tombstone
        assert "2 entries" in out
        assert store.path.stat().st_size < size_before

    def test_exec_status_prune_is_idempotent(self, capsys, tmp_path):
        run_cli(
            capsys, "compare", "counter", "--scale", "tiny", "--procs", "2",
            "--cache-dir", str(tmp_path),
        )
        first = run_cli(capsys, "exec-status", "--cache-dir", str(tmp_path),
                        "--prune")
        second = run_cli(capsys, "exec-status", "--cache-dir", str(tmp_path),
                         "--prune")
        assert "pruned 0 dead line(s)" in second
        assert "2 entries" in first and "2 entries" in second


class TestSuiteCommands:
    def test_suite_list(self, capsys):
        out = run_cli(capsys, "suite", "list")
        for name in ("paper-fig7", "paper-eval", "smoke", "stamp-extended"):
            assert name in out

    def test_suite_describe(self, capsys):
        out = run_cli(capsys, "suite", "describe", "--suite", "smoke")
        assert "expands to 4 scenario(s)" in out
        assert "unique jobs after dedup: 3" in out
        assert "counter[tiny]" in out

    def test_suite_describe_json(self, capsys):
        import json

        out = run_cli(capsys, "suite", "describe", "--suite", "smoke",
                      "--json")
        specs = json.loads(out)
        assert len(specs) == 4
        assert all(spec["workload"] == "counter" for spec in specs)
        from repro.scenarios import ScenarioSpec

        restored = [ScenarioSpec.from_dict(spec) for spec in specs]
        assert len({spec.digest for spec in restored}) == 4

    def test_suite_describe_scale_override(self, capsys):
        out = run_cli(capsys, "suite", "describe", "--suite", "smoke",
                      "--scale", "small")
        assert "counter[small]" in out

    def test_suite_run_cached_second_pass_zero_sims(self, capsys, tmp_path):
        argv = ("suite", "run", "--suite", "smoke", "--jobs", "2",
                "--cache-dir", str(tmp_path), "--progress")
        first = run_cli(capsys, *argv)
        assert "suite smoke — 4 scenario(s)" in first
        assert "gated vs ungated pairs" in first
        code = main(list(argv))
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == first  # bit-identical results from cache
        assert "executed 0 of 4 submitted" in captured.err
        assert "3 cache hit(s)" in captured.err

    def test_suite_unknown_name(self, capsys):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError, match="unknown suite"):
            main(["suite", "run", "--suite", "paper-fig9"])


class TestExecStatusGc:
    """`exec-status --prune --older-than/--label` — store GC policies."""

    def _seed(self, capsys, tmp_path):
        run_cli(
            capsys, "sweep", "counter", "--scale", "tiny", "--procs", "2",
            "--w0-values", "4", "8", "--cache-dir", str(tmp_path),
        )

    def test_label_gc(self, capsys, tmp_path):
        self._seed(capsys, tmp_path)  # 3 entries: 1 ungated + 2 gated
        out = run_cli(capsys, "exec-status", "--cache-dir", str(tmp_path),
                      "--prune", "--label", "ungated")
        assert "1 expired by policy" in out
        assert "2 entries" in out

    def test_age_gc_keeps_fresh_entries(self, capsys, tmp_path):
        self._seed(capsys, tmp_path)
        out = run_cli(capsys, "exec-status", "--cache-dir", str(tmp_path),
                      "--prune", "--older-than", "30")
        assert "expired by policy" not in out
        assert "3 entries" in out

    def test_age_gc_expires_old_entries(self, capsys, tmp_path):
        self._seed(capsys, tmp_path)
        out = run_cli(capsys, "exec-status", "--cache-dir", str(tmp_path),
                      "--prune", "--older-than", "0")
        assert "3 expired by policy" in out
        assert "0 entries" in out

    def test_gc_flags_require_prune(self, capsys, tmp_path):
        self._seed(capsys, tmp_path)
        assert main(["exec-status", "--cache-dir", str(tmp_path),
                     "--older-than", "30"]) == 2
        assert "add --prune" in capsys.readouterr().err
