"""Statistics primitives, RNG plumbing and event tracing."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import derive_seed, spawn_rngs
from repro.sim.stats import Counter, Histogram, StatsRegistry
from repro.sim.trace import NullTrace, TraceRecorder


class TestCounter:
    def test_basic(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6


class TestHistogram:
    def test_moments(self):
        h = Histogram("lat")
        h.record_many([2, 4, 6])
        assert h.count == 3
        assert h.total == 12
        assert h.mean == 4.0
        assert h.min == 2
        assert h.max == 6
        assert math.isclose(h.variance, 8.0 / 3.0)
        assert math.isclose(h.stddev, math.sqrt(8.0 / 3.0))

    def test_empty(self):
        h = Histogram("empty")
        assert h.mean == 0.0
        assert h.variance == 0.0
        assert h.min is None

    def test_single_sample_variance(self):
        h = Histogram("one")
        h.record(10)
        assert h.variance == 0.0

    def test_buckets_are_log2(self):
        h = Histogram("b")
        h.record_many([0, 1, 2, 3, 4, 8, 1000])
        # bit_length buckets: 0->0, 1->1, 2,3->2, 4->3, 8->4, 1000->10
        assert h.buckets == {0: 1, 1: 1, 2: 2, 3: 1, 4: 1, 10: 1}

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
    def test_moments_match_numpy(self, values):
        h = Histogram("prop")
        h.record_many(values)
        assert h.count == len(values)
        assert math.isclose(h.mean, float(np.mean(values)), rel_tol=1e-9)
        assert math.isclose(
            h.variance, float(np.var(values)), rel_tol=1e-6, abs_tol=1e-6
        )


class TestStatsRegistry:
    def test_counter_reuse(self):
        reg = StatsRegistry()
        reg.bump("a.b")
        reg.bump("a.b", 2)
        assert reg.get("a.b") == 3
        assert reg.get("missing") == 0
        assert reg.get("missing", 9) == 9

    def test_counters_sorted(self):
        reg = StatsRegistry()
        reg.bump("z")
        reg.bump("a")
        assert list(reg.counters()) == ["a", "z"]

    def test_as_dict_includes_histograms(self):
        reg = StatsRegistry()
        reg.bump("n", 2)
        reg.histogram("h").record(5)
        d = reg.as_dict()
        assert d["n"] == 2
        assert d["h.count"] == 1
        assert d["h.mean"] == 5.0


class TestRng:
    def test_derive_seed_stable(self):
        # Values must be stable across processes/runs (FNV over repr).
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")
        assert derive_seed(0, "tx", 3, 7) != derive_seed(0, "tx", 7, 3)

    def test_derive_seed_in_63_bits(self):
        for ctx in range(50):
            assert 0 <= derive_seed(123, ctx) < 2**63

    def test_spawn_independence(self):
        a1, b1 = spawn_rngs(42, 2)
        a2, _ = spawn_rngs(42, 2)
        draws_a1 = a1.integers(0, 1 << 30, size=10)
        # drawing extra from b1 must not perturb stream a
        _ = b1.integers(0, 1 << 30, size=100)
        draws_a2 = a2.integers(0, 1 << 30, size=10)
        assert (draws_a1 == draws_a2).all()

    def test_spawn_distinct_streams(self):
        a, b = spawn_rngs(42, 2)
        assert (a.integers(0, 1 << 30, size=10) != b.integers(0, 1 << 30, size=10)).any()


class TestTrace:
    def test_null_trace_discards(self):
        trace = NullTrace()
        trace.emit(1, "x", a=1)
        assert trace.events() == []
        assert not trace.enabled

    def test_recorder_records_in_order(self):
        trace = TraceRecorder()
        trace.emit(1, "tx.begin", proc=0)
        trace.emit(2, "tx.abort", proc=1)
        assert len(trace) == 2
        assert [e.kind for e in trace] == ["tx.begin", "tx.abort"]
        assert trace.events("tx.abort")[0].proc == 1

    def test_prefix_filtering_on_query(self):
        trace = TraceRecorder()
        trace.emit(1, "gate.off", proc=0)
        trace.emit(2, "gate.on", proc=0)
        trace.emit(3, "tx.begin", proc=0)
        assert len(trace.events("gate")) == 2

    def test_kind_restriction_at_recording(self):
        trace = TraceRecorder(kinds=("gate",))
        trace.emit(1, "gate.off", proc=0)
        trace.emit(2, "tx.begin", proc=0)
        assert len(trace) == 1

    def test_payload_attribute_access(self):
        trace = TraceRecorder()
        trace.emit(5, "x", victim=3)
        event = trace.events()[0]
        assert event.victim == 3
        assert event.time == 5
        with pytest.raises(AttributeError):
            _ = event.missing_field
