"""Invariant 10: bit-reproducibility of whole simulations."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.harness.runner import run_workload, workload
from repro.workloads.registry import available_workloads


def fingerprint(result) -> tuple:
    """Everything observable about a run, hashed into a comparable value."""
    return (
        result.parallel_time,
        result.end_cycle,
        result.energy.total,
        tuple(sorted(result.counters.items())),
        tuple(sorted(result.machine_result.memory_snapshot.items())),
    )


@pytest.mark.parametrize("name", ["counter", "intruder", "yada"])
@pytest.mark.parametrize("gating", [False, True], ids=["ungated", "gated"])
def test_same_seed_same_run(name, gating):
    config = SystemConfig(num_procs=4, seed=123).with_gating(gating)
    spec = workload(name, scale="tiny", seed=123)
    a = run_workload(spec, config)
    b = run_workload(spec, config)
    assert fingerprint(a) == fingerprint(b)


def test_different_seed_different_schedule():
    results = []
    for seed in (1, 2):
        config = SystemConfig(num_procs=4, seed=seed)
        results.append(
            run_workload(workload("intruder", scale="tiny", seed=seed), config)
        )
    assert fingerprint(results[0]) != fingerprint(results[1])


def test_timelines_reproduce_exactly():
    config = SystemConfig(num_procs=4, seed=77)
    spec = workload("counter", scale="tiny", seed=77)
    a = run_workload(spec, config)
    b = run_workload(spec, config)
    for tl_a, tl_b in zip(a.machine_result.timelines, b.machine_result.timelines):
        assert tl_a.segments() == tl_b.segments()


def test_all_workloads_reproducible_quick():
    for name in available_workloads():
        config = SystemConfig(num_procs=2, seed=5)
        spec = workload(name, scale="tiny", seed=5)
        assert fingerprint(run_workload(spec, config)) == fingerprint(
            run_workload(spec, config)
        ), name
