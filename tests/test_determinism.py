"""Invariant 10: bit-reproducibility of whole simulations.

Two layers of regression protection:

* run-to-run — the same seed and configuration must reproduce every
  observable of a run exactly (fingerprint tests below);
* version-to-version — the PR 3 hot-path rewrite froze the ``smoke``
  suite's pre-refactor job digests and full serialized results into
  ``tests/data/smoke_golden.json``; the golden tests prove the rewrite
  (and any future "make it faster" change) leaves both the cache keys
  and the simulated numbers bit-identical.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import SystemConfig
from repro.exec.executor import Executor
from repro.exec.serialize import result_to_dict
from repro.exec.store import ResultStore
from repro.harness.runner import run_workload, workload
from repro.scenarios.builtin import get_suite
from repro.scenarios.runner import run_suite
from repro.workloads.registry import available_workloads

GOLDEN_PATH = Path(__file__).parent / "data" / "smoke_golden.json"
FLUSH_GOLDEN_PATH = Path(__file__).parent / "data" / "flush_golden.json"

#: Counters introduced (deliberately) after the golden was captured.
#: Everything else in a result must match the golden byte for byte.
COUNTERS_ADDED_SINCE_GOLDEN = {"tx.aborts.total"}

#: Same escape hatch for the flush-heavy golden (captured pre-PR7).
FLUSH_COUNTERS_ADDED_SINCE_GOLDEN: set[str] = set()


def fingerprint(result) -> tuple:
    """Everything observable about a run, hashed into a comparable value."""
    return (
        result.parallel_time,
        result.end_cycle,
        result.energy.total,
        tuple(sorted(result.counters.items())),
        tuple(sorted(result.machine_result.memory_snapshot.items())),
    )


@pytest.mark.parametrize("name", ["counter", "intruder", "yada"])
@pytest.mark.parametrize("gating", [False, True], ids=["ungated", "gated"])
def test_same_seed_same_run(name, gating):
    config = SystemConfig(num_procs=4, seed=123).with_gating(gating)
    spec = workload(name, scale="tiny", seed=123)
    a = run_workload(spec, config)
    b = run_workload(spec, config)
    assert fingerprint(a) == fingerprint(b)


def test_different_seed_different_schedule():
    results = []
    for seed in (1, 2):
        config = SystemConfig(num_procs=4, seed=seed)
        results.append(
            run_workload(workload("intruder", scale="tiny", seed=seed), config)
        )
    assert fingerprint(results[0]) != fingerprint(results[1])


def test_timelines_reproduce_exactly():
    config = SystemConfig(num_procs=4, seed=77)
    spec = workload("counter", scale="tiny", seed=77)
    a = run_workload(spec, config)
    b = run_workload(spec, config)
    for tl_a, tl_b in zip(a.machine_result.timelines, b.machine_result.timelines):
        assert tl_a.segments() == tl_b.segments()


def test_all_workloads_reproducible_quick():
    for name in available_workloads():
        config = SystemConfig(num_procs=2, seed=5)
        spec = workload(name, scale="tiny", seed=5)
        assert fingerprint(run_workload(spec, config)) == fingerprint(
            run_workload(spec, config)
        ), name


# ----------------------------------------------------------------------
# version-to-version regression: the pre-refactor golden
# ----------------------------------------------------------------------
def _run_smoke_suite(store: ResultStore | None = None):
    suite = get_suite("smoke", scale="tiny", seed=0)
    return run_suite(suite, executor=Executor(jobs=1, store=store))


def test_smoke_suite_matches_pre_refactor_golden():
    """Digests and results must match the frozen pre-PR3 capture.

    The job digest is the result-cache key: if it moves, every cached
    result in every store silently invalidates.  The result payload is
    the simulation's observable outcome: parallel window, end cycle,
    full energy breakdown (exact floats) and every counter.  Only the
    counters listed in COUNTERS_ADDED_SINCE_GOLDEN may differ — by
    existing — and each addition must be documented there.
    """
    golden = json.loads(GOLDEN_PATH.read_text())
    gold = {e["digest"]: e["result"] for e in golden["entries"]}

    outcome = _run_smoke_suite()
    fresh: dict[str, dict] = {}
    for entry in outcome.results:
        fresh[entry.spec.to_job().digest] = result_to_dict(entry.result)

    assert sorted(fresh) == sorted(gold), (
        "RunJob digests changed — cached results would invalidate"
    )
    for digest, golden_result in gold.items():
        result = dict(fresh[digest])
        counters = {
            k: v
            for k, v in result.pop("counters").items()
            if k not in COUNTERS_ADDED_SINCE_GOLDEN
        }
        golden_counters = dict(golden_result)
        expected_counters = golden_counters.pop("counters")
        assert result == golden_counters, f"result fields drifted ({digest[:12]})"
        assert counters == expected_counters, f"counters drifted ({digest[:12]})"


def test_flush_heavy_suite_matches_golden():
    """High-contention capture pinning the directory commit-flush path.

    yada and labyrinth at 16 threads produce long invalidation fan-outs
    and abort/retry flush storms — exactly the path the batched flush
    service rewrote.  Digests and full results must match the frozen
    pre-rewrite capture (``scripts/regen_flush_golden.py``); counters
    added since go in FLUSH_COUNTERS_ADDED_SINCE_GOLDEN, everything
    else byte for byte.
    """
    from repro.scenarios.runner import run_specs
    from repro.scenarios.spec import ScenarioSpec

    golden = json.loads(FLUSH_GOLDEN_PATH.read_text())
    gold = {e["digest"]: e["result"] for e in golden["entries"]}
    specs = [
        ScenarioSpec(
            workload=workload, scale="tiny", threads=16, seed=0, gating=gating
        )
        for workload in ("yada", "labyrinth")
        for gating in (False, True)
    ]

    fresh: dict[str, dict] = {}
    for entry in run_specs(specs, executor=Executor(jobs=1)):
        fresh[entry.spec.to_job().digest] = result_to_dict(entry.result)

    assert sorted(fresh) == sorted(gold), (
        "RunJob digests changed — cached results would invalidate"
    )
    for digest, golden_result in gold.items():
        result = dict(fresh[digest])
        counters = {
            k: v
            for k, v in result.pop("counters").items()
            if k not in FLUSH_COUNTERS_ADDED_SINCE_GOLDEN
        }
        golden_counters = dict(golden_result)
        expected_counters = golden_counters.pop("counters")
        assert result == golden_counters, f"result fields drifted ({digest[:12]})"
        assert counters == expected_counters, f"counters drifted ({digest[:12]})"


def test_smoke_suite_store_jsonl_byte_identical(tmp_path):
    """Two cold runs must write byte-identical ResultStore logs.

    Runs the smoke suite twice into two fresh stores and compares the
    ``results.jsonl`` files record by record: identical digest sets and
    byte-identical serialized results.  Only the ``created`` wall-clock
    stamp (metadata, not content) is excluded from the comparison.
    """
    logs = []
    for name in ("a", "b"):
        store = ResultStore(tmp_path / name)
        _run_smoke_suite(store=store)
        # repro: allow[STO201] — byte-level determinism check must read
        # the raw store file, bypassing the backend's parsed view
        lines = (tmp_path / name / "results.jsonl").read_text().splitlines()
        records = []
        for line in lines:
            record = json.loads(line)
            record.pop("created")
            # re-encode canonically so the byte comparison is on content
            records.append(json.dumps(record, sort_keys=True))
        logs.append(records)

    assert logs[0] == logs[1]
    digests = [
        {json.loads(r)["digest"] for r in log} for log in logs
    ]
    assert digests[0] == digests[1] and len(digests[0]) == 3
