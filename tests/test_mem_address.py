"""Address arithmetic and directory homing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryModelError
from repro.mem.address import WORD_BYTES, AddressMap


def make_map(num_dirs=4, line_bytes=64, memory=1 << 20) -> AddressMap:
    return AddressMap(line_bytes=line_bytes, num_dirs=num_dirs, memory_bytes=memory)


class TestValidation:
    def test_rejects_unaligned(self):
        amap = make_map()
        with pytest.raises(MemoryModelError):
            amap.check_word_addr(3)

    def test_rejects_out_of_range(self):
        amap = make_map(memory=1024)
        with pytest.raises(MemoryModelError):
            amap.check_word_addr(1024)
        with pytest.raises(MemoryModelError):
            amap.check_word_addr(-8)

    def test_accepts_last_word(self):
        amap = make_map(memory=1024)
        assert amap.check_word_addr(1016) == 1016

    def test_bad_geometry(self):
        with pytest.raises(MemoryModelError):
            AddressMap(line_bytes=60, num_dirs=4, memory_bytes=1 << 20)
        with pytest.raises(MemoryModelError):
            AddressMap(line_bytes=64, num_dirs=0, memory_bytes=1 << 20)
        with pytest.raises(MemoryModelError):
            AddressMap(line_bytes=64, num_dirs=4, memory_bytes=32)


class TestLineMath:
    def test_line_of(self):
        amap = make_map()
        assert amap.line_of(0) == 0
        assert amap.line_of(63) == 0
        assert amap.line_of(64) == 1
        assert amap.line_of(6400) == 100

    def test_line_base_roundtrip(self):
        amap = make_map()
        assert amap.line_base(5) == 320
        assert amap.line_of(amap.line_base(5)) == 5

    def test_words_of_line(self):
        amap = make_map()
        words = list(amap.words_of_line(2))
        assert len(words) == 8
        assert words[0] == 128
        assert words[-1] == 128 + 56
        assert amap.words_per_line == 8


class TestHoming:
    def test_interleaving(self):
        amap = make_map(num_dirs=4)
        assert [amap.home_of_line(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_home_of_addr(self):
        amap = make_map(num_dirs=4)
        assert amap.home_of_addr(64 * 5) == 1

    def test_lines_by_home_groups_and_sorts(self):
        amap = make_map(num_dirs=2)
        grouped = amap.lines_by_home([5, 2, 4, 3, 2])
        assert grouped == {0: [2, 4], 1: [3, 5]}


@given(
    addr=st.integers(min_value=0, max_value=(1 << 20) - WORD_BYTES).map(
        lambda a: a - a % WORD_BYTES
    ),
    num_dirs=st.integers(min_value=1, max_value=32),
)
def test_every_word_has_exactly_one_home(addr, num_dirs):
    amap = make_map(num_dirs=num_dirs)
    line = amap.line_of(addr)
    home = amap.home_of_line(line)
    assert 0 <= home < num_dirs
    assert amap.home_of_addr(addr) == home
    # all words of the line share the home
    for word in amap.words_of_line(line):
        assert amap.home_of_addr(word) == home


@given(st.lists(st.integers(0, 10_000), max_size=60), st.integers(1, 16))
def test_lines_by_home_is_a_partition(lines, num_dirs):
    amap = make_map(num_dirs=num_dirs)
    grouped = amap.lines_by_home(lines)
    flattened = [line for group in grouped.values() for line in group]
    assert sorted(flattened) == sorted(set(lines))
    for home, group in grouped.items():
        assert group == sorted(group)
        for line in group:
            assert amap.home_of_line(line) == home
