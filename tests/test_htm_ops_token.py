"""Op validation, the transaction decorator, and the token vendor."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError, WorkloadError
from repro.htm.ops import Compute, Load, Store, TxOp, transaction
from repro.htm.token import TokenVendor
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry


class TestOps:
    def test_compute_rejects_negative(self):
        with pytest.raises(WorkloadError):
            Compute(-1)

    def test_txop_requires_callable_body(self):
        with pytest.raises(WorkloadError):
            TxOp("not callable", site="x")  # type: ignore[arg-type]

    def test_txop_requires_site(self):
        with pytest.raises(WorkloadError):
            TxOp(lambda tx: iter(()), site="")

    def test_ops_are_frozen_values(self):
        load = Load(64)
        assert load.addr == 64
        store = Store(8, 5)
        assert (store.addr, store.value) == (8, 5)


class TestTransactionDecorator:
    def test_decorator_builds_txop(self):
        @transaction("deposit")
        def deposit(tx, addr, amount):
            balance = yield Load(addr)
            yield Store(addr, balance + amount)

        op = deposit(64, 5)
        assert isinstance(op, TxOp)
        assert op.site == "deposit"
        gen = op.body(None)
        assert next(gen) == Load(64)
        with pytest.raises(StopIteration):
            gen.send(10)  # Store is the last yield
            gen.send(None)

    def test_decorator_binds_arguments_per_call(self):
        @transaction("t")
        def body(tx, addr):
            yield Load(addr)

        assert next(body(8).body(None)) == Load(8)
        assert next(body(16).body(None)) == Load(16)


def make_vendor():
    engine = Engine()
    return engine, TokenVendor(engine, StatsRegistry())


class TestTokenVendor:
    def test_tids_are_consecutive(self):
        _, vendor = make_vendor()
        assert [vendor.issue(0), vendor.issue(1), vendor.issue(0)] == [1, 2, 3]

    def test_min_live(self):
        _, vendor = make_vendor()
        assert vendor.min_live() is None
        t1, t2 = vendor.issue(0), vendor.issue(1)
        assert vendor.min_live() == t1
        vendor.finish(t1)
        assert vendor.min_live() == t2

    def test_wait_fires_immediately_for_min(self):
        engine, vendor = make_vendor()
        t1 = vendor.issue(0)
        fired: list[int] = []
        vendor.wait_for_turn(t1, lambda: fired.append(t1))
        engine.run()
        assert fired == [t1]

    def test_waiters_release_in_tid_order(self):
        engine, vendor = make_vendor()
        t1, t2, t3 = (vendor.issue(p) for p in range(3))
        fired: list[int] = []
        vendor.wait_for_turn(t3, lambda: fired.append(t3))
        vendor.wait_for_turn(t2, lambda: fired.append(t2))
        engine.run()
        assert fired == []  # t1 still live
        vendor.finish(t1)
        engine.run()
        assert fired == [t2]  # t3 still behind t2
        vendor.finish(t2)
        engine.run()
        assert fired == [t2, t3]

    def test_release_unblocks_like_finish(self):
        engine, vendor = make_vendor()
        t1, t2 = vendor.issue(0), vendor.issue(1)
        fired: list[int] = []
        vendor.wait_for_turn(t2, lambda: fired.append(t2))
        vendor.release(t1)  # aborted committer
        engine.run()
        assert fired == [t2]

    def test_dead_waiter_dropped(self):
        engine, vendor = make_vendor()
        t1, t2, t3 = (vendor.issue(p) for p in range(3))
        fired: list[int] = []
        vendor.wait_for_turn(t2, lambda: fired.append(t2))
        vendor.wait_for_turn(t3, lambda: fired.append(t3))
        vendor.release(t2)  # t2 aborts while queued
        vendor.finish(t1)
        engine.run()
        assert fired == [t3]

    def test_wait_for_unknown_tid_rejected(self):
        _, vendor = make_vendor()
        with pytest.raises(ProtocolError):
            vendor.wait_for_turn(99, lambda: None)

    def test_double_retire_rejected(self):
        _, vendor = make_vendor()
        t1 = vendor.issue(0)
        vendor.finish(t1)
        with pytest.raises(ProtocolError):
            vendor.finish(t1)

    def test_is_live(self):
        _, vendor = make_vendor()
        t1 = vendor.issue(0)
        assert vendor.is_live(t1)
        vendor.finish(t1)
        assert not vendor.is_live(t1)
