"""Analysis subpackage: conflict graphs, gating episodes, exports."""

from __future__ import annotations

import csv
import io

import networkx as nx
import pytest

from repro.analysis.conflicts import abort_graph, conflict_stats
from repro.analysis.gating import extract_episodes, gating_summary
from repro.analysis.runreport import run_report
from repro.analysis.timelines import state_shares, timelines_to_csv
from repro.config import SystemConfig
from repro.harness.runner import run_workload, workload
from repro.power.states import ProcState
from repro.sim.trace import TraceRecorder


@pytest.fixture(scope="module")
def traced_run():
    trace = TraceRecorder(kinds=("tx", "gate"))
    result = run_workload(
        workload("counter", scale="tiny", seed=9),
        SystemConfig(num_procs=4, seed=9),
        trace=trace,
    )
    return result, trace


@pytest.fixture(scope="module")
def quiet_run():
    """Zero-conflict run: analysis must degrade gracefully."""
    trace = TraceRecorder(kinds=("tx", "gate"))
    result = run_workload(
        workload("array_walk", scale="tiny", seed=9),
        SystemConfig(num_procs=2, seed=9),
        trace=trace,
    )
    return result, trace


class TestAbortGraph:
    def test_graph_structure(self, traced_run):
        _, trace = traced_run
        graph = abort_graph(trace)
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_edges() > 0
        total = sum(d["weight"] for _, _, d in graph.edges(data=True))
        assert total == len(
            [e for e in trace.events("tx.abort") if e.payload.get("aborter") is not None]
        )

    def test_empty_graph_for_quiet_run(self, quiet_run):
        _, trace = quiet_run
        graph = abort_graph(trace)
        assert graph.number_of_edges() == 0

    def test_reciprocity_metric(self):
        """Reciprocity counts mutual abort pairs (synthetic trace)."""
        trace = TraceRecorder()
        trace.emit(1, "tx.abort", proc=1, aborter=0, cause="conflict", site="s")
        trace.emit(2, "tx.abort", proc=0, aborter=1, cause="conflict", site="s")
        trace.emit(3, "tx.abort", proc=2, aborter=0, cause="conflict", site="s")
        stats = conflict_stats(trace)
        # pairs: (0,1) and (1,0) mutual; (0,2) one-way -> 2 of 3
        assert stats.reciprocity() == pytest.approx(2 / 3)

    def test_self_abort_recorded_on_node(self):
        trace = TraceRecorder()
        trace.emit(1, "tx.abort", proc=3, aborter=None, cause="self", site="s")
        graph = abort_graph(trace)
        assert graph.nodes[3]["self_aborts"] == 1


class TestConflictStats:
    def test_totals_match_counters(self, traced_run):
        result, trace = traced_run
        stats = conflict_stats(trace)
        assert stats.total_aborts == result.aborts
        assert stats.conflict_aborts == result.counters.get(
            "tx.aborts.conflict", 0
        )
        assert stats.self_aborts == result.counters.get("tx.aborts.self", 0)

    def test_hottest_site(self, traced_run):
        _, trace = traced_run
        stats = conflict_stats(trace)
        assert stats.hottest_site == "counter.inc"
        assert stats.hottest_pair is not None

    def test_empty_stats(self, quiet_run):
        _, trace = quiet_run
        stats = conflict_stats(trace)
        assert stats.total_aborts == 0
        assert stats.hottest_site is None
        assert stats.hottest_pair is None
        assert stats.reciprocity() == 0.0


class TestGatingEpisodes:
    def test_episodes_match_counters(self, traced_run):
        result, trace = traced_run
        episodes = extract_episodes(trace)
        assert len(episodes) == result.counters.get("gating.gated", 0)
        completed = [e for e in episodes if e.end is not None]
        assert len(completed) == result.counters.get("gating.wakeups", 0)
        for episode in completed:
            assert episode.duration > 0

    def test_summary(self, traced_run):
        result, trace = traced_run
        summary = gating_summary(trace)
        assert summary.episodes == result.counters.get("gating.gated", 0)
        assert summary.total_gated_cycles > 0
        assert summary.mean_duration > 0
        assert summary.max_duration >= summary.mean_duration
        assert sum(summary.turn_on_reasons.values()) >= summary.completed

    def test_renewals_attributed(self, traced_run):
        result, trace = traced_run
        summary = gating_summary(trace)
        if result.counters.get("gating.renewals", 0) > 0:
            assert summary.episodes_with_renewal > 0
            assert summary.max_renewals >= 1


class TestTimelineExports:
    def test_state_shares_sum_to_one(self, traced_run):
        result, _ = traced_run
        window = (
            result.machine_result.parallel_start,
            result.machine_result.parallel_end,
        )
        shares = state_shares(result.machine_result.timelines, window)
        for proc, by_state in shares.items():
            assert sum(by_state.values()) == pytest.approx(1.0)
            assert set(by_state) == set(ProcState)

    def test_csv_roundtrip(self, traced_run):
        result, _ = traced_run
        text = timelines_to_csv(result.machine_result.timelines)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows
        assert set(rows[0]) == {"proc", "start", "end", "state"}
        # segments per proc tile contiguously
        by_proc: dict[str, list[dict]] = {}
        for row in rows:
            by_proc.setdefault(row["proc"], []).append(row)
        for segments in by_proc.values():
            for a, b in zip(segments, segments[1:]):
                assert int(a["end"]) == int(b["start"])

    def test_csv_windowed(self, traced_run):
        result, _ = traced_run
        window = (
            result.machine_result.parallel_start,
            result.machine_result.parallel_end,
        )
        text = timelines_to_csv(result.machine_result.timelines, window)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert min(int(r["start"]) for r in rows) == window[0]
        assert max(int(r["end"]) for r in rows) == window[1]


class TestRunReport:
    def test_report_sections(self, traced_run):
        result, trace = traced_run
        text = run_report(result, trace)
        assert "Run report — counter" in text
        assert "state shares" in text
        assert "gating:" in text
        assert "wake-up reasons" in text

    def test_report_without_trace(self, traced_run):
        result, _ = traced_run
        text = run_report(result)
        assert "Run report" in text
        assert "gating:" not in text  # trace-derived sections absent

    def test_report_ungated(self):
        trace = TraceRecorder(kinds=("tx", "gate"))
        result = run_workload(
            workload("counter", scale="tiny", seed=9),
            SystemConfig(num_procs=2, seed=9).with_gating(False),
            trace=trace,
        )
        text = run_report(result, trace)
        assert "ungated" in text
        assert "conflicts:" in text


# ======================================================================
# the `repro check` lint engine (repro.analysis.lint / .rules)
# ======================================================================
import json
import textwrap
from pathlib import Path

from repro.analysis.lint import (
    check_source,
    registered_rules,
    render_json,
    run_check,
)


def _check(source, module="sim/example.py", select=None):
    """Run the registered rules over one in-memory module.

    ``module`` is the virtual location below ``src/repro/`` (or any
    non-package path like ``tests/foo.py``), which is what the
    package-scoped rules key on.
    """
    if "/" in module and not module.startswith(("tests/", "scripts/")):
        path = Path("src/repro") / module
    else:
        path = Path(module)
    rules = registered_rules()
    if select:
        rules = [r for r in rules if r.id in select or r.name in select]
    findings, suppressed, errors = check_source(
        textwrap.dedent(source), path, rules
    )
    assert not errors, errors
    return findings, suppressed


def _rule_ids(findings):
    return [f.rule for f in findings]


class TestLintEngine:
    def test_registry_has_first_class_rule_set(self):
        ids = [rule.id for rule in registered_rules()]
        assert len(ids) >= 8
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
        for rule in registered_rules():
            assert rule.name and rule.rationale

    def test_trailing_suppression(self):
        findings, suppressed = _check(
            """\
            import time

            def now():
                return time.time()  # repro: allow[DET001]
            """
        )
        assert findings == []
        assert suppressed == 1

    def test_comment_block_suppression_above(self):
        findings, suppressed = _check(
            """\
            import time

            def now():
                # justified: example fixture
                # repro: allow[wallclock]
                return time.time()
            """
        )
        assert findings == []
        assert suppressed == 1

    def test_star_suppression_and_unknown_id(self):
        findings, suppressed = _check(
            """\
            import time

            def now():
                return time.time()  # repro: allow[*]

            x = 1  # repro: allow[NOPE999]
            """
        )
        assert suppressed == 1
        assert _rule_ids(findings) == ["SUPP"]
        assert "NOPE999" in findings[0].message

    def test_suppression_in_docstring_is_inert(self):
        findings, _ = _check(
            '''\
            def doc():
                """Mentions # repro: allow[NOPE999] in prose only."""
                return 1
            '''
        )
        assert findings == []

    def test_parse_error_is_reported_not_raised(self):
        findings, suppressed, errors = check_source(
            "def broken(:\n", Path("src/repro/sim/x.py"), registered_rules()
        )
        assert findings == [] and suppressed == 0
        assert [e.rule for e in errors] == ["PARSE"]

    def test_run_check_walks_dirs_and_json_round_trips(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        (tmp_path / "src" / "repro" / "sim" / "__pycache__").mkdir()
        (pkg / "__pycache__" / "skip.py").write_text("import time\n")
        report = run_check([tmp_path / "src"])
        assert report.files_checked == 1
        assert report.exit_code == 1
        assert report.by_rule() == {"DET001": 1}
        payload = json.loads(render_json(report))
        assert payload["schema"] == 1
        assert payload["exit_code"] == 1
        assert payload["by_rule"] == {"DET001": 1}
        assert payload["findings"][0]["rule"] == "DET001"
        assert payload["findings"][0]["line"] == 4

    def test_select_and_ignore(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim"
        bad.mkdir(parents=True)
        (bad / "two.py").write_text(
            "import time\nimport random\n\n"
            "def f(items):\n"
            "    random.shuffle(items)\n"
            "    return time.time()\n"
        )
        assert run_check([tmp_path], select=["DET001"]).by_rule() == {
            "DET001": 1
        }
        assert run_check([tmp_path], ignore=["DET001"]).by_rule() == {
            "DET002": 1
        }


class TestDeterminismRules:
    def test_det001_flags_wallclock_in_core(self):
        findings, _ = _check(
            """\
            import time

            def stamp():
                return time.perf_counter()
            """,
            module="htm/example.py",
        )
        assert _rule_ids(findings) == ["DET001"]

    def test_det001_ignores_non_core_code(self):
        findings, _ = _check(
            "import time\n\ndef f():\n    return time.time()\n",
            module="scripts/bench.py",
        )
        assert findings == []

    def test_det002_flags_stdlib_random_and_bare_default_rng(self):
        findings, _ = _check(
            """\
            import random
            import numpy as np

            def f(items):
                random.shuffle(items)
                a = np.random.default_rng()
                b = np.random.default_rng(42)
                return a, b
            """,
            module="workloads/example.py",
        )
        assert _rule_ids(findings) == ["DET002", "DET002", "DET002"]

    def test_det002_allows_derived_seed_generator(self):
        findings, _ = _check(
            """\
            import numpy as np
            from repro.sim.rng import derive_seed

            def f(seed):
                return np.random.default_rng(derive_seed(seed, "walk"))
            """,
            module="workloads/example.py",
        )
        assert findings == []

    def test_det003_flags_order_sensitive_set_iteration(self):
        findings, _ = _check(
            """\
            def f(names: set):
                for name in names:
                    print(name)
                return list(names), ",".join(names)
            """,
            module="mem/example.py",
        )
        assert _rule_ids(findings) == ["DET003", "DET003", "DET003"]

    def test_det003_allows_sorted_and_order_insensitive_sinks(self):
        findings, _ = _check(
            """\
            def f(names: set):
                for name in sorted(names):
                    print(name)
                return len(names), sum(n for n in names), sorted(names)
            """,
            module="mem/example.py",
        )
        assert findings == []


class TestDigestAndStoreRules:
    def test_dig101_flags_post_construction_setattr(self):
        findings, _ = _check(
            """\
            class Job:
                def __post_init__(self) -> None:
                    object.__setattr__(self, "digest", "ok")

                def rewrite(self) -> None:
                    object.__setattr__(self, "digest", "bad")
            """,
            module="exec/example.py",
        )
        assert _rule_ids(findings) == ["DIG101"]
        assert "rewrite" in findings[0].message

    def test_dig102_flags_half_zeroed_replicate_key(self):
        findings, _ = _check(
            """\
            def replicate_key(payload: dict) -> dict:
                payload["workload"]["seed"] = 0
                return payload
            """,
            module="exec/example.py",
        )
        assert _rule_ids(findings) == ["DIG102"]

    def test_dig102_allows_both_slots_zeroed(self):
        findings, _ = _check(
            """\
            def replicate_key(payload: dict) -> dict:
                payload["workload"]["seed"] = 0
                payload["config"]["seed"] = 0
                return payload
            """,
            module="exec/example.py",
        )
        assert findings == []

    def test_dig103_flags_seed_dependent_cache_value(self):
        findings, _ = _check(
            """\
            def resolve(reuse, spec, config):
                key = (spec.name, spec.scale)
                reuse._prep[key] = spec.build(config.seed)
                return reuse._prep[key]
            """,
            module="harness/example.py",
        )
        assert _rule_ids(findings) == ["DIG103"]
        assert "seed-dependent" in findings[0].message

    def test_dig103_allows_seed_keyed_cache(self):
        findings, _ = _check(
            """\
            def resolve(reuse, spec, config):
                key = (spec.name, spec.seed)
                reuse._prep[key] = spec.build(config.seed)
                return reuse._prep[key]
            """,
            module="harness/example.py",
        )
        assert findings == []

    def test_dig103_flags_mutation_of_cached_value(self):
        findings, _ = _check(
            """\
            def merge(reuse, key, extra):
                cached = reuse._prep.get(key)
                cached.update(extra)
                return cached
            """,
            module="harness/example.py",
        )
        assert _rule_ids(findings) == ["DIG103"]
        assert "immutable after prep" in findings[0].message

    def test_dig103_flags_attribute_write_on_cached_value(self):
        findings, _ = _check(
            """\
            def stamp(reuse, key, seed):
                cached = reuse._prep[key]
                cached.seed = seed
                return cached
            """,
            module="harness/example.py",
        )
        assert _rule_ids(findings) == ["DIG103"]

    def test_dig103_allows_restamp_pattern(self):
        """The sanctioned shape: seed-free key, replace() on read."""
        findings, _ = _check(
            """\
            from dataclasses import replace

            def resolve(reuse, source, config):
                key = (source.name, source.scale)
                instance = reuse._prep.get(key)
                if instance is None:
                    reuse._prep[key] = instance = source.build(config.num_procs)
                if instance.seed != source.seed:
                    instance = replace(instance, seed=source.seed)
                return instance
            """,
            module="harness/example.py",
        )
        assert findings == []

    def test_dig103_covers_self_caches_in_reuse_classes(self):
        findings, _ = _check(
            """\
            class RunReuse:
                def put(self, key, spec, config):
                    self._prep[key] = spec.build(config.seed)
            """,
            module="harness/example.py",
        )
        assert _rule_ids(findings) == ["DIG103"]

    def test_sto201_flags_direct_store_access(self):
        findings, _ = _check(
            """\
            import sqlite3
            from pathlib import Path

            def peek(d: Path) -> str:
                sqlite3.connect(d / "results.db")
                return (d / "results.jsonl").read_text()
            """,
            module="figures/example.py",
        )
        assert _rule_ids(findings) == ["STO201", "STO201"]

    def test_sto201_exempts_backend_layer(self):
        findings, _ = _check(
            """\
            import sqlite3

            def connect(d: object) -> object:
                return sqlite3.connect(d / "results.db")
            """,
            module="exec/backends/example.py",
        )
        assert findings == []

    def test_sto202_flags_unbalanced_flock(self):
        findings, _ = _check(
            """\
            import fcntl

            def locked(fh: object) -> None:
                fcntl.flock(fh, fcntl.LOCK_EX)
                fh.write("x")
            """,
            module="exec/example.py",
        )
        assert _rule_ids(findings) == ["STO202"]

    def test_sto202_allows_try_finally_release(self):
        findings, _ = _check(
            """\
            import fcntl

            def locked(fh: object) -> None:
                fcntl.flock(fh, fcntl.LOCK_EX)
                try:
                    fh.write("x")
                finally:
                    fcntl.flock(fh, fcntl.LOCK_UN)
            """,
            module="exec/example.py",
        )
        assert findings == []


class TestObsAndGatingRules:
    def test_obs301_flags_undeclared_metric_name(self):
        findings, _ = _check(
            """\
            def wire(stats):
                return stats.counter("tx.bogus_metric")
            """,
            module="htm/example.py",
        )
        assert _rule_ids(findings) == ["OBS301"]

    def test_obs301_allows_declared_and_prefixed_names(self):
        findings, _ = _check(
            """\
            def wire(stats, prefix):
                a = stats.counter("tx.commits")
                b = stats.counter(f"{prefix}.fills")
                c = stats.histogram("gating.window")
                return a, b, c
            """,
            module="htm/example.py",
        )
        assert findings == []

    def test_obs302_flags_null_recorder_gap(self):
        findings, _ = _check(
            """\
            class NullRecorder:
                def count(self, name: str, value: int = 1) -> None:
                    pass

            class ObsRecorder:
                def count(self, name: str, value: int = 1) -> None:
                    self._bump(name, value)

                def span(self, name: str) -> object:
                    return object()
            """,
            module="obs/example.py",
        )
        assert _rule_ids(findings) == ["OBS302"]
        assert "span" in findings[0].message

    def test_obs303_flags_span_outside_with(self):
        findings, _ = _check(
            """\
            def f(recorder: object) -> None:
                recorder.span("work")
                with recorder.span("ok"):
                    pass
            """,
            module="exec/example.py",
        )
        assert _rule_ids(findings) == ["OBS303"]

    def _metrics_fixture(self, tmp_path, declared, wire_source):
        """A synthetic package: metrics.py catalog + one bump site."""
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        entries = "".join(f"    {name!r},\n" for name in declared)
        (pkg / "metrics.py").write_text(
            "DECLARED_METRICS = frozenset({\n" + entries + "})\n"
        )
        (pkg / "wire.py").write_text(textwrap.dedent(wire_source))
        return pkg / "metrics.py"

    def test_obs304_flags_dead_declaration(self, tmp_path):
        path = self._metrics_fixture(
            tmp_path,
            ["tx.commits", "tx.ghost_metric"],
            """\
            def wire(stats):
                return stats.counter("tx.commits")
            """,
        )
        findings, _, errors = check_source(
            path.read_text(), path, registered_rules()
        )
        assert not errors
        assert _rule_ids(findings) == ["OBS304"]
        assert "tx.ghost_metric" in findings[0].message
        assert findings[0].line == 3  # anchored at the declaration entry

    def test_obs304_matches_fstring_prefix_bumps(self, tmp_path):
        path = self._metrics_fixture(
            tmp_path,
            ["*.fills", "gating.window"],
            """\
            def wire(stats, prefix):
                a = stats.counter(f"{prefix}.fills")
                b = stats.histogram("gating.window")
                return a, b
            """,
        )
        findings, _, errors = check_source(
            path.read_text(), path, registered_rules()
        )
        assert not errors
        assert findings == []

    def test_obs304_counts_obs_recorder_bumps(self, tmp_path):
        path = self._metrics_fixture(
            tmp_path,
            ["store.puts"],
            """\
            def put(recorder):
                recorder.count("store.puts")
            """,
        )
        findings, _, errors = check_source(
            path.read_text(), path, registered_rules()
        )
        assert not errors
        assert findings == []

    def test_obs304_only_runs_on_the_catalog_module(self):
        findings, _ = _check(
            'DECLARED_METRICS = frozenset({"tx.ghost_metric"})\n',
            module="htm/example.py",
        )
        assert findings == []

    def test_gat401_flags_unguarded_window_query(self):
        findings, _ = _check(
            """\
            def arm(self, entry):
                return self._cm.gating_window_ex(entry.abort_count, 0, 0)
            """,
            module="gating/example.py",
        )
        assert _rule_ids(findings) == ["GAT401"]

    def test_gat401_allows_guarded_query(self):
        findings, _ = _check(
            """\
            def arm(self, entry):
                assert entry.abort_count >= 1
                return self._cm.gating_window_ex(entry.abort_count, 0, 0)
            """,
            module="gating/example.py",
        )
        assert findings == []

    def test_gat401_exempts_definition_layer(self):
        findings, _ = _check(
            """\
            def gating_window_ex(self, aborts, renews, momentum):
                return self.gating_window(aborts, renews)
            """,
            module="cm/example.py",
        )
        assert findings == []


class TestTypedCoreRule:
    def test_typ501_flags_unannotated_def_in_typed_core(self):
        findings, _ = _check(
            "def f(x):\n    return x\n", module="exec/example.py"
        )
        assert _rule_ids(findings) == ["TYP501"]
        assert "x" in findings[0].message and "return" in findings[0].message

    def test_typ501_skips_self_and_core_packages(self):
        findings, _ = _check(
            """\
            class C:
                def method(self, x: int) -> int:
                    return x
            """,
            module="exec/example.py",
        )
        assert findings == []
        findings, _ = _check(
            "def f(x):\n    return x\n", module="sim/example.py"
        )
        assert findings == []


class TestCheckCli:
    def test_cli_json_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        pkg = tmp_path / "src" / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        exit_code = main(["check", "--json", str(tmp_path / "src")])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["by_rule"] == {"DET001": 1}
        assert payload["schema"] == 1

    def test_cli_list_rules(self, capsys):
        from repro.cli import main

        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET003" in out and "set-iteration" in out

    def test_tree_is_clean_at_head(self):
        """The meta-gate: `repro check` over the real tree reports zero."""
        root = Path(__file__).resolve().parents[1]
        report = run_check(
            [root / "src", root / "tests", root / "scripts"]
        )
        assert report.parse_errors == []
        assert report.findings == [], render_json(report)
