"""Analysis subpackage: conflict graphs, gating episodes, exports."""

from __future__ import annotations

import csv
import io

import networkx as nx
import pytest

from repro.analysis.conflicts import abort_graph, conflict_stats
from repro.analysis.gating import extract_episodes, gating_summary
from repro.analysis.runreport import run_report
from repro.analysis.timelines import state_shares, timelines_to_csv
from repro.config import SystemConfig
from repro.harness.runner import run_workload, workload
from repro.power.states import ProcState
from repro.sim.trace import TraceRecorder


@pytest.fixture(scope="module")
def traced_run():
    trace = TraceRecorder(kinds=("tx", "gate"))
    result = run_workload(
        workload("counter", scale="tiny", seed=9),
        SystemConfig(num_procs=4, seed=9),
        trace=trace,
    )
    return result, trace


@pytest.fixture(scope="module")
def quiet_run():
    """Zero-conflict run: analysis must degrade gracefully."""
    trace = TraceRecorder(kinds=("tx", "gate"))
    result = run_workload(
        workload("array_walk", scale="tiny", seed=9),
        SystemConfig(num_procs=2, seed=9),
        trace=trace,
    )
    return result, trace


class TestAbortGraph:
    def test_graph_structure(self, traced_run):
        _, trace = traced_run
        graph = abort_graph(trace)
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_edges() > 0
        total = sum(d["weight"] for _, _, d in graph.edges(data=True))
        assert total == len(
            [e for e in trace.events("tx.abort") if e.payload.get("aborter") is not None]
        )

    def test_empty_graph_for_quiet_run(self, quiet_run):
        _, trace = quiet_run
        graph = abort_graph(trace)
        assert graph.number_of_edges() == 0

    def test_reciprocity_metric(self):
        """Reciprocity counts mutual abort pairs (synthetic trace)."""
        trace = TraceRecorder()
        trace.emit(1, "tx.abort", proc=1, aborter=0, cause="conflict", site="s")
        trace.emit(2, "tx.abort", proc=0, aborter=1, cause="conflict", site="s")
        trace.emit(3, "tx.abort", proc=2, aborter=0, cause="conflict", site="s")
        stats = conflict_stats(trace)
        # pairs: (0,1) and (1,0) mutual; (0,2) one-way -> 2 of 3
        assert stats.reciprocity() == pytest.approx(2 / 3)

    def test_self_abort_recorded_on_node(self):
        trace = TraceRecorder()
        trace.emit(1, "tx.abort", proc=3, aborter=None, cause="self", site="s")
        graph = abort_graph(trace)
        assert graph.nodes[3]["self_aborts"] == 1


class TestConflictStats:
    def test_totals_match_counters(self, traced_run):
        result, trace = traced_run
        stats = conflict_stats(trace)
        assert stats.total_aborts == result.aborts
        assert stats.conflict_aborts == result.counters.get(
            "tx.aborts.conflict", 0
        )
        assert stats.self_aborts == result.counters.get("tx.aborts.self", 0)

    def test_hottest_site(self, traced_run):
        _, trace = traced_run
        stats = conflict_stats(trace)
        assert stats.hottest_site == "counter.inc"
        assert stats.hottest_pair is not None

    def test_empty_stats(self, quiet_run):
        _, trace = quiet_run
        stats = conflict_stats(trace)
        assert stats.total_aborts == 0
        assert stats.hottest_site is None
        assert stats.hottest_pair is None
        assert stats.reciprocity() == 0.0


class TestGatingEpisodes:
    def test_episodes_match_counters(self, traced_run):
        result, trace = traced_run
        episodes = extract_episodes(trace)
        assert len(episodes) == result.counters.get("gating.gated", 0)
        completed = [e for e in episodes if e.end is not None]
        assert len(completed) == result.counters.get("gating.wakeups", 0)
        for episode in completed:
            assert episode.duration > 0

    def test_summary(self, traced_run):
        result, trace = traced_run
        summary = gating_summary(trace)
        assert summary.episodes == result.counters.get("gating.gated", 0)
        assert summary.total_gated_cycles > 0
        assert summary.mean_duration > 0
        assert summary.max_duration >= summary.mean_duration
        assert sum(summary.turn_on_reasons.values()) >= summary.completed

    def test_renewals_attributed(self, traced_run):
        result, trace = traced_run
        summary = gating_summary(trace)
        if result.counters.get("gating.renewals", 0) > 0:
            assert summary.episodes_with_renewal > 0
            assert summary.max_renewals >= 1


class TestTimelineExports:
    def test_state_shares_sum_to_one(self, traced_run):
        result, _ = traced_run
        window = (
            result.machine_result.parallel_start,
            result.machine_result.parallel_end,
        )
        shares = state_shares(result.machine_result.timelines, window)
        for proc, by_state in shares.items():
            assert sum(by_state.values()) == pytest.approx(1.0)
            assert set(by_state) == set(ProcState)

    def test_csv_roundtrip(self, traced_run):
        result, _ = traced_run
        text = timelines_to_csv(result.machine_result.timelines)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows
        assert set(rows[0]) == {"proc", "start", "end", "state"}
        # segments per proc tile contiguously
        by_proc: dict[str, list[dict]] = {}
        for row in rows:
            by_proc.setdefault(row["proc"], []).append(row)
        for segments in by_proc.values():
            for a, b in zip(segments, segments[1:]):
                assert int(a["end"]) == int(b["start"])

    def test_csv_windowed(self, traced_run):
        result, _ = traced_run
        window = (
            result.machine_result.parallel_start,
            result.machine_result.parallel_end,
        )
        text = timelines_to_csv(result.machine_result.timelines, window)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert min(int(r["start"]) for r in rows) == window[0]
        assert max(int(r["end"]) for r in rows) == window[1]


class TestRunReport:
    def test_report_sections(self, traced_run):
        result, trace = traced_run
        text = run_report(result, trace)
        assert "Run report — counter" in text
        assert "state shares" in text
        assert "gating:" in text
        assert "wake-up reasons" in text

    def test_report_without_trace(self, traced_run):
        result, _ = traced_run
        text = run_report(result)
        assert "Run report" in text
        assert "gating:" not in text  # trace-derived sections absent

    def test_report_ungated(self):
        trace = TraceRecorder(kinds=("tx", "gate"))
        result = run_workload(
            workload("counter", scale="tiny", seed=9),
            SystemConfig(num_procs=2, seed=9).with_gating(False),
            trace=trace,
        )
        text = run_report(result, trace)
        assert "ungated" in text
        assert "conflicts:" in text
