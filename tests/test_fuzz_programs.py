"""Property-based fuzzing of whole simulations.

Hypothesis generates small arbitrary transactional programs — random
mixes of loads, stores, computes and read-modify-writes over a small
hot address pool — and every generated schedule must satisfy, under
both gating modes:

* no deadlock (the run completes),
* TID-order serializability of the commit log (Invariant 1),
* timeline tiling (Invariant 6),
* gating accounting (wakeups == gates; no processor left gated),
* determinism (re-running the same seed gives the same fingerprint).

This is the test that hunts protocol races; the two genuine bugs found
during development (stale fill replies, stale-OFF timer cancellation)
would both have been caught here.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import GatingConfig, SystemConfig
from repro.harness.validation import check_serializability
from repro.htm.machine import Machine
from repro.htm.ops import Compute, Load, Store, TxOp
from repro.htm.program import ThreadProgram
from repro.sim.timeline import verify_tiling

#: a handful of hot lines shared by every thread (dense conflicts)
ADDRS = [0x1000 + 64 * i for i in range(6)] + [0x1008, 0x1048]


@st.composite
def tx_body_ops(draw):
    """One transaction body: a list of (op-kind, addr-index, value)."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["load", "store", "rmw", "compute"]),
                st.integers(0, len(ADDRS) - 1),
                st.integers(0, 7),
            ),
            min_size=1,
            max_size=6,
        )
    )


@st.composite
def thread_program_spec(draw):
    """One thread: a few transactions with compute gaps."""
    return draw(st.lists(tx_body_ops(), min_size=1, max_size=4))


def build_program(spec):
    def make_body(body_spec):
        def body(tx):
            acc = 0
            for kind, addr_idx, value in body_spec:
                addr = ADDRS[addr_idx]
                if kind == "load":
                    acc = yield Load(addr)
                elif kind == "store":
                    yield Store(addr, value)
                elif kind == "rmw":
                    current = yield Load(addr)
                    yield Store(addr, current + value + (acc % 3))
                else:
                    yield Compute(value)

        return body

    def program(ctx):
        for i, body_spec in enumerate(spec):
            yield TxOp(make_body(body_spec), site=f"fuzz.{i % 3}")
            yield Compute(3)

    return program


def run_once(specs, seed, gating):
    config = SystemConfig(
        num_procs=len(specs),
        seed=seed,
        gating=GatingConfig(enabled=gating, w0=8),
        max_cycles=2_000_000,
    )
    programs = [ThreadProgram(build_program(s), f"f{i}") for i, s in enumerate(specs)]
    machine = Machine(config, programs, validation_mode=True)
    result = machine.run()
    return machine, result


def fingerprint(result):
    return (
        result.end_cycle,
        result.parallel_start,
        result.parallel_end,
        tuple(sorted(result.counters().items())),
        tuple(sorted(result.memory_snapshot.items())),
    )


@settings(max_examples=25, deadline=None)
@given(
    specs=st.lists(thread_program_spec(), min_size=2, max_size=4),
    seed=st.integers(0, 1_000),
    gating=st.booleans(),
)
def test_fuzzed_programs_hold_all_invariants(specs, seed, gating):
    machine, result = run_once(specs, seed, gating)

    # 1. serializability of the commit log
    check_serializability({}, result, machine.memory.version_log)

    # 2. timeline tiling over the parallel window
    verify_tiling(result.timelines, result.parallel_start, result.parallel_end)

    # 3. gating accounting
    counters = result.counters()
    assert counters.get("gating.wakeups", 0) == counters.get("gating.gated", 0)
    for proc in machine.procs:
        assert not proc.gated
        assert proc.finished

    # 4. attempts bookkeeping
    aborts = counters.get("tx.aborts.conflict", 0) + counters.get(
        "tx.aborts.self", 0
    )
    assert counters["tx.attempts"] == counters["tx.commits"] + aborts
    expected_commits = sum(len(s) for s in specs)
    assert counters["tx.commits"] == expected_commits


@settings(max_examples=10, deadline=None)
@given(
    specs=st.lists(thread_program_spec(), min_size=2, max_size=3),
    seed=st.integers(0, 100),
)
def test_fuzzed_programs_are_deterministic(specs, seed):
    _, a = run_once(specs, seed, gating=True)
    _, b = run_once(specs, seed, gating=True)
    assert fingerprint(a) == fingerprint(b)
