"""Contention managers: Eq. (8) staircase and the baselines."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cm.backoff import (
    ExponentialBackoffCM,
    ImmediateCM,
    LinearBackoffCM,
    PoliteBackoffCM,
)
from repro.cm.base import ContentionManager
from repro.cm.gating_aware import GatingAwareCM, staircase_term
from repro.cm.registry import available_cms, create_cm, register_cm
from repro.config import GatingConfig
from repro.errors import ConfigError


class TestStaircase:
    def test_known_values(self):
        # 2^ceil(lg n): 0,1 -> 1; 2 -> 2; 3,4 -> 4; 5..8 -> 8; 9..16 -> 16
        expected = {0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 16: 16, 17: 32}
        for count, value in expected.items():
            assert staircase_term(count) == value, count

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            staircase_term(-1)

    @given(st.integers(0, 10_000))
    def test_power_of_two_and_bounds(self, n):
        term = staircase_term(n)
        assert term & (term - 1) == 0  # power of two
        assert term >= max(1, n)       # ceil property
        if n > 1:
            assert term < 2 * n        # tightness of the ceiling

    @given(st.integers(0, 5_000), st.integers(0, 5_000))
    def test_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert staircase_term(lo) <= staircase_term(hi)

    def test_jumps_exactly_at_powers_of_two(self):
        """Invariant 7: discontinuities at exponentially spaced counts."""
        jumps = [
            n
            for n in range(1, 1025)
            if staircase_term(n) != staircase_term(n - 1)
        ]
        assert jumps == [2, 3, 5, 9, 17, 33, 65, 129, 257, 513]


class TestGatingAwareCM:
    def test_eq8_first_abort(self):
        cm = GatingAwareCM(w0=8)
        # Wt = W0 (2^ceil(lg 1) + 2^ceil(lg 0)) = 8 * (1 + 1)
        assert cm.gating_window(1, 0) == 16

    def test_eq8_growth(self):
        cm = GatingAwareCM(w0=8)
        assert cm.gating_window(2, 0) == 8 * (2 + 1)
        assert cm.gating_window(3, 0) == 8 * (4 + 1)
        assert cm.gating_window(1, 2) == 8 * (1 + 2)
        assert cm.gating_window(4, 4) == 8 * (4 + 4)

    def test_w0_scales_linearly(self):
        assert GatingAwareCM(w0=32).gating_window(1, 0) == 64

    def test_retry_delay_is_zero(self):
        """The paper's ungated baseline retries immediately."""
        assert GatingAwareCM().retry_delay(0, 5) == 0

    def test_rejects_zero_abort_count(self):
        with pytest.raises(ConfigError):
            GatingAwareCM().gating_window(0, 0)

    def test_rejects_bad_w0(self):
        with pytest.raises(ConfigError):
            GatingAwareCM(w0=0)

    @given(st.integers(1, 255), st.integers(0, 255))
    def test_window_monotone_in_counts(self, na, nr):
        cm = GatingAwareCM(w0=8)
        w = cm.gating_window(na, nr)
        assert cm.gating_window(na + 1, nr) >= w
        assert cm.gating_window(na, nr + 1) >= w
        assert w >= 2 * cm.w0


class TestBaselines:
    def test_immediate(self):
        cm = ImmediateCM(w0=8)
        assert cm.retry_delay(0, 10) == 0
        assert cm.gating_window(3, 1) == 8

    def test_linear(self):
        cm = LinearBackoffCM(step=10, cap=35)
        assert cm.retry_delay(0, 1) == 10
        assert cm.retry_delay(0, 3) == 30
        assert cm.retry_delay(0, 10) == 35  # capped

    def test_exponential(self):
        cm = ExponentialBackoffCM(base=4, cap=100)
        assert cm.retry_delay(0, 1) == 4
        assert cm.retry_delay(0, 2) == 8
        assert cm.retry_delay(0, 4) == 32
        assert cm.retry_delay(0, 20) == 100  # capped
        assert cm.retry_delay(0, 0) == 0

    def test_polite_jitter_deterministic_and_bounded(self):
        cm = PoliteBackoffCM(base=8, cap=10_000, seed=3)
        d1 = cm.retry_delay(1, 4)
        d2 = cm.retry_delay(1, 4)
        assert d1 == d2  # reproducible
        nominal = ExponentialBackoffCM(base=8, cap=10_000).retry_delay(1, 4)
        assert nominal // 2 <= d1 <= nominal

    def test_polite_decorrelates_processors(self):
        cm = PoliteBackoffCM(base=8, cap=10_000, seed=3)
        delays = {cm.retry_delay(p, 6) for p in range(16)}
        assert len(delays) > 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            LinearBackoffCM(step=0)
        with pytest.raises(ConfigError):
            ExponentialBackoffCM(base=10, cap=5)


class TestRegistry:
    def test_all_names_construct(self):
        for name in available_cms():
            cm = create_cm(GatingConfig(contention_manager=name))
            assert isinstance(cm, ContentionManager)

    def test_gating_aware_gets_w0(self):
        cm = create_cm(GatingConfig(w0=32))
        assert isinstance(cm, GatingAwareCM)
        assert cm.w0 == 32

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown contention manager"):
            create_cm(GatingConfig(contention_manager="nope"))

    def test_register_custom(self):
        class MyCM(GatingAwareCM):
            name = "custom-test"

        register_cm("custom-test", lambda g, seed: MyCM(w0=g.w0))
        cm = create_cm(GatingConfig(contention_manager="custom-test"))
        assert isinstance(cm, MyCM)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ConfigError):
            register_cm("", lambda g, s: ImmediateCM())

    def test_factory_type_checked(self):
        register_cm("broken-test", lambda g, s: object())  # type: ignore[arg-type]
        with pytest.raises(ConfigError, match="not a ContentionManager"):
            create_cm(GatingConfig(contention_manager="broken-test"))
