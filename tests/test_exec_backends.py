"""Backend parity: the full store contract against JSONL and SQLite.

Every test in ``TestStoreContract`` runs identically for both backends
— put/get/invalidate/prune/labels/stats, tombstone replay, schema skew
— plus migration round-trips (jsonl -> sqlite -> jsonl with byte-stable
records) and backend auto-detection.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ExecutionError
from repro.exec.backends import (
    BACKENDS,
    JsonlBackend,
    SqliteBackend,
    create_backend,
    detect_backend,
)
from repro.exec.executor import Executor
from repro.exec.jobs import SCHEMA_VERSION, execute_job
from repro.exec.serialize import result_to_dict
from repro.exec.store import ResultStore

from .test_exec import tiny_job

BACKEND_NAMES = sorted(BACKENDS)


@pytest.fixture(scope="module")
def seeded_results():
    """Two distinct executed results, shared across the module."""
    keep, drop = tiny_job(), tiny_job(gated=False)
    return {
        keep.digest: (keep, execute_job(keep)),
        drop.digest: (drop, execute_job(drop)),
    }


@pytest.fixture(params=BACKEND_NAMES)
def backend_name(request):
    return request.param


def make_store(path, backend_name):
    return ResultStore(path, backend=backend_name)


def inject(store: ResultStore, record: dict) -> None:
    """Write a raw record through the backend (any schema, any shape)."""
    store.backend.append(record)


def inject_corrupt(store: ResultStore) -> None:
    """Plant one unparseable record, per-backend."""
    if store.backend.name == "jsonl":
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("{torn mid-append\n")
    else:
        conn = store.backend._connect()
        conn.execute(
            "INSERT OR REPLACE INTO records (digest, schema, tombstone, payload) "
            "VALUES (?, ?, 0, ?)",
            ("corrupt-digest", SCHEMA_VERSION, "{torn mid-append"),
        )
        conn.commit()


class TestStoreContract:
    """One suite, every backend: the behavior must be identical."""

    def test_put_get_roundtrip(self, tmp_path, backend_name, seeded_results):
        digest, (job, result) = next(iter(seeded_results.items()))
        store = make_store(tmp_path, backend_name)
        store.put(digest, result, job=job)
        assert result_to_dict(store.get(digest)) == result_to_dict(result)
        reloaded = make_store(tmp_path, backend_name)
        assert result_to_dict(reloaded.get(digest)) == result_to_dict(result)
        assert (store.hits, store.misses) == (1, 0)

    def test_last_write_wins(self, tmp_path, backend_name, seeded_results):
        (d1, (j1, r1)), (d2, (j2, r2)) = seeded_results.items()
        store = make_store(tmp_path, backend_name)
        store.put(d1, r1, job=j1)
        store.put(d1, r2, job=j2)  # overwrite under the same digest
        reloaded = make_store(tmp_path, backend_name)
        assert len(reloaded) == 1
        assert result_to_dict(reloaded.get(d1)) == result_to_dict(r2)

    def test_tombstone_replay(self, tmp_path, backend_name, seeded_results):
        digest, (job, result) = next(iter(seeded_results.items()))
        store = make_store(tmp_path, backend_name)
        store.put(digest, result, job=job)
        assert store.invalidate(digest)
        assert not store.invalidate(digest)  # already gone
        # the tombstone survives a reload of the same directory...
        reloaded = make_store(tmp_path, backend_name)
        assert digest not in reloaded
        assert len(reloaded) == 0
        # ...and a later put resurrects the digest
        reloaded.put(digest, result, job=job)
        assert digest in make_store(tmp_path, backend_name)

    def test_schema_skew_is_skipped_and_counted(
        self, tmp_path, backend_name, seeded_results
    ):
        digest, (job, result) = next(iter(seeded_results.items()))
        store = make_store(tmp_path, backend_name)
        store.put(digest, result, job=job)
        inject(store, {"digest": "future", "schema": SCHEMA_VERSION + 1,
                       "result": {}})
        inject_corrupt(store)
        reloaded = make_store(tmp_path, backend_name)
        assert len(reloaded) == 1
        assert reloaded.stats().skipped_records == 2
        assert result_to_dict(reloaded.get(digest)) == result_to_dict(result)

    def test_labels(self, tmp_path, backend_name, seeded_results):
        store = make_store(tmp_path, backend_name)
        for digest, (job, result) in seeded_results.items():
            store.put(digest, result, job=job)
        labels = dict(make_store(tmp_path, backend_name).labels())
        assert labels == {
            digest: job.label() for digest, (job, _r) in seeded_results.items()
        }

    def test_stats_identify_the_backend(self, tmp_path, backend_name):
        store = make_store(tmp_path, backend_name)
        stats = store.stats()
        assert stats.backend == backend_name
        assert backend_name in stats.summary()
        assert stats.schema == SCHEMA_VERSION

    def test_clear_resets_everything(
        self, tmp_path, backend_name, seeded_results
    ):
        digest, (job, result) = next(iter(seeded_results.items()))
        store = make_store(tmp_path, backend_name)
        store.put(digest, result, job=job)
        inject(store, {"digest": "old", "schema": SCHEMA_VERSION - 1,
                       "result": {}})
        store = make_store(tmp_path, backend_name)
        assert store.stats().skipped_records == 1
        assert store.clear() == 1
        assert store.stats().skipped_records == 0
        reloaded = make_store(tmp_path, backend_name)
        assert len(reloaded) == 0
        assert reloaded.stats().skipped_records == 0

    def test_prune_drops_dead_records_keeps_live(
        self, tmp_path, backend_name, seeded_results
    ):
        (d1, (j1, r1)), (d2, (j2, r2)) = seeded_results.items()
        store = make_store(tmp_path, backend_name)
        store.put(d1, r1, job=j1)
        store.put(d2, r2, job=j2)
        store.invalidate(d2)
        inject(store, {"digest": "old", "schema": SCHEMA_VERSION - 1,
                       "result": {}})
        store = make_store(tmp_path, backend_name)
        report = store.prune()
        assert report.entries == 1
        # jsonl: 2 results + tombstone + stale = 4 lines, 1 live kept;
        # sqlite upserts collapse d2's put+tombstone into one row.
        expected_dropped = 4 - 1 if backend_name == "jsonl" else 3 - 1
        assert report.lines_dropped == expected_dropped
        reloaded = make_store(tmp_path, backend_name)
        assert len(reloaded) == 1
        assert reloaded.stats().skipped_records == 0
        assert result_to_dict(reloaded.get(d1)) == result_to_dict(r1)

    def test_compact_preserves_concurrent_appends(
        self, tmp_path, backend_name, seeded_results
    ):
        """prune/compact must never delete records it did not load."""
        (d1, (j1, r1)), (d2, (j2, r2)) = seeded_results.items()
        stale = make_store(tmp_path, backend_name)
        stale.put(d1, r1, job=j1)
        stale.invalidate(d1)
        stale.put(d1, r1, job=j1)
        # another process appends while `stale`'s index is already loaded
        other = make_store(tmp_path, backend_name)
        other.put(d2, r2, job=j2)
        other.close()
        report = stale.prune()
        assert report.entries == 2  # d1 AND the concurrently-added d2
        assert d2 in stale  # index refreshed from the rewritten storage
        reloaded = make_store(tmp_path, backend_name)
        assert {digest for digest, _ in reloaded.labels()} == {d1, d2}

    def test_executor_cache_roundtrip(self, tmp_path, backend_name):
        job = tiny_job()
        first = Executor(store=make_store(tmp_path, backend_name))
        fresh = first.run([job])
        assert first.last_report.executed == 1
        second = Executor(store=make_store(tmp_path, backend_name))
        cached = second.run([job])
        assert second.last_report.cache_hits == 1
        assert result_to_dict(cached[0]) == result_to_dict(fresh[0])

    def test_concurrent_multiprocess_puts(self, tmp_path, backend_name):
        """Both backends take concurrent appenders without losing records."""
        from concurrent.futures import ProcessPoolExecutor

        from repro.exec.serialize import result_from_dict

        from .test_exec import _hammer_store

        payload = result_to_dict(execute_job(tiny_job()))
        # one seed write pins the backend the children auto-detect
        seed = make_store(tmp_path, backend_name)
        seed.put("f" * 64, result_from_dict(payload))
        seed.close()
        workers, per_worker = 3, 10
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_hammer_store, str(tmp_path), w, payload, per_worker)
                for w in range(workers)
            ]
            for future in futures:
                future.result()
        reloaded = make_store(tmp_path, backend_name)
        assert reloaded.stats().skipped_records == 0
        assert len(reloaded) == workers * per_worker + 1


class TestMigration:
    def test_jsonl_sqlite_jsonl_roundtrip_is_byte_stable(
        self, tmp_path, seeded_results
    ):
        source = ResultStore(tmp_path / "a", backend="jsonl")
        for digest, (job, result) in seeded_results.items():
            source.put(digest, result, job=job)

        via = ResultStore(tmp_path / "b", backend="sqlite")
        assert via.merge_from(source) == len(seeded_results)
        back = ResultStore(tmp_path / "c", backend="jsonl")
        assert back.merge_from(via) == len(seeded_results)

        key = lambda record: record["digest"]
        original = sorted(source.records(), key=key)
        assert sorted(via.records(), key=key) == original
        assert sorted(back.records(), key=key) == original
        # record-for-record identical => the JSONL lines are byte-stable
        for record in original:
            line = json.dumps(record, separators=(",", ":"))
            # repro: allow[STO201] — asserts the on-disk JSONL bytes,
            # which only a raw read can see
            assert line in (tmp_path / "c" / "results.jsonl").read_text()

    def test_merge_is_idempotent(self, tmp_path, seeded_results):
        source = ResultStore(tmp_path / "a", backend="jsonl")
        for digest, (job, result) in seeded_results.items():
            source.put(digest, result, job=job)
        dest = ResultStore(tmp_path / "b", backend="sqlite")
        assert dest.merge_from(source) == len(seeded_results)
        assert dest.merge_from(source) == 0  # identical records skipped


class TestBackendSelection:
    def test_empty_directory_defaults_to_jsonl(self, tmp_path):
        assert detect_backend(tmp_path) == "jsonl"
        assert isinstance(create_backend(tmp_path), JsonlBackend)

    def test_auto_detects_sqlite(self, tmp_path, seeded_results):
        digest, (job, result) = next(iter(seeded_results.items()))
        ResultStore(tmp_path, backend="sqlite").put(digest, result, job=job)
        assert detect_backend(tmp_path) == "sqlite"
        auto = ResultStore(tmp_path)  # no backend argument
        assert isinstance(auto.backend, SqliteBackend)
        assert digest in auto

    def test_ambiguous_directory_is_an_error(self, tmp_path, seeded_results):
        digest, (job, result) = next(iter(seeded_results.items()))
        (tmp_path / JsonlBackend.filename).write_text("")
        ResultStore(tmp_path, backend="sqlite").put(digest, result, job=job)
        with pytest.raises(ExecutionError, match="more than one store"):
            ResultStore(tmp_path)
        # ...but an explicit choice still opens it
        assert ResultStore(tmp_path, backend="jsonl").backend.name == "jsonl"

    def test_read_only_open_creates_no_store_file(self, tmp_path):
        """Probing a directory must not pollute it (auto-detect safety)."""
        for name in BACKEND_NAMES:
            store = make_store(tmp_path, name)
            assert not store.path.exists()
            assert len(store) == 0
            store.prune()
            store.clear()
            store.close()
            assert not store.path.exists()
        assert detect_backend(tmp_path) == "jsonl"

    def test_unknown_backend_is_an_error(self, tmp_path):
        with pytest.raises(ExecutionError, match="unknown store backend"):
            ResultStore(tmp_path, backend="postgres")


class TestStoreGc:
    """Age/label-based expiry (`exec-status --prune --older-than/--label`)."""

    def _seed(self, tmp_path, backend_name, seeded_results):
        (d1, (j1, r1)), (d2, (j2, r2)) = seeded_results.items()
        store = make_store(tmp_path, backend_name)
        store.put(d1, r1, job=j1)
        store.put(d2, r2, job=j2)
        return store, (d1, j1), (d2, j2)

    def test_age_expiry(self, tmp_path, backend_name, seeded_results):
        store, (d1, _j1), (d2, _j2) = self._seed(
            tmp_path, backend_name, seeded_results
        )
        # age one record by rewriting its created timestamp far back
        record = dict(store._index[d1], created=1.0)
        inject(store, record)
        store = make_store(tmp_path, backend_name)
        report = store.prune(older_than_seconds=3600.0)
        assert report.expired == 1
        assert report.entries == 1
        reloaded = make_store(tmp_path, backend_name)
        assert d1 not in reloaded._index and d2 in reloaded._index

    def test_age_expiry_keeps_fresh_records(
        self, tmp_path, backend_name, seeded_results
    ):
        store, _one, _two = self._seed(tmp_path, backend_name, seeded_results)
        report = store.prune(older_than_seconds=3600.0)
        assert report.expired == 0
        assert report.entries == 2

    def test_missing_timestamp_counts_as_ancient(
        self, tmp_path, backend_name, seeded_results
    ):
        store, (d1, _j1), _two = self._seed(
            tmp_path, backend_name, seeded_results
        )
        record = dict(store._index[d1])
        record.pop("created")
        inject(store, record)
        store = make_store(tmp_path, backend_name)
        report = store.prune(older_than_seconds=3600.0)
        assert report.expired == 1

    def test_label_expiry(self, tmp_path, backend_name, seeded_results):
        store, (d1, j1), (d2, j2) = self._seed(
            tmp_path, backend_name, seeded_results
        )
        # the two seeded jobs differ in gating mode (gated vs ungated)
        victim_label = "ungated"
        victims = [d for d, label in store.labels() if victim_label in label]
        assert len(victims) == 1
        report = store.prune(label=victim_label)
        assert report.expired == 1
        survivors = {d for d, _label in make_store(
            tmp_path, backend_name).labels()}
        assert victims[0] not in survivors
        assert len(survivors) == 1

    def test_both_criteria_are_anded(
        self, tmp_path, backend_name, seeded_results
    ):
        store, (d1, _j1), _two = self._seed(
            tmp_path, backend_name, seeded_results
        )
        # everything is ancient, but only one label matches
        for digest in list(store._index):
            inject(store, dict(store._index[digest], created=1.0))
        store = make_store(tmp_path, backend_name)
        report = store.prune(older_than_seconds=3600.0, label="ungated")
        assert report.expired == 1
        assert report.entries == 1

    def test_policy_prune_summary_mentions_expiry(
        self, tmp_path, backend_name, seeded_results
    ):
        store, _one, _two = self._seed(tmp_path, backend_name, seeded_results)
        report = store.prune(older_than_seconds=0.0)
        assert report.expired == 2
        assert "expired by policy" in report.summary()
        assert len(make_store(tmp_path, backend_name)) == 0
