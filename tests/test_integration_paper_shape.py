"""Paper-shape integration tests.

These assert the *qualitative* claims of the evaluation section on
small-but-real runs — who wins, in which direction — without pinning
absolute numbers (our substrate is a simulator, not the authors'
modified M5).  The full quantitative sweep lives in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.harness.compare import compare_gating
from repro.harness.runner import run_workload, workload
from repro.power.states import ProcState

pytestmark = pytest.mark.integration


class TestHighContentionSavings:
    """'For highly-conflicting application like intruder, abort rate is
    high and as a result savings in the energy is also reasonable.'"""

    @pytest.fixture(scope="class")
    def intruder16(self):
        return compare_gating(
            workload("intruder", scale="small", seed=1),
            SystemConfig(num_procs=16, seed=1),
        )

    def test_abort_rate_is_high(self, intruder16):
        assert intruder16.ungated.abort_rate > 0.5

    def test_energy_savings_substantial(self, intruder16):
        assert intruder16.energy_reduction > 1.15

    def test_gating_reduces_wasted_work(self, intruder16):
        assert intruder16.gated.aborts < intruder16.ungated.aborts

    def test_gated_state_time_is_significant(self, intruder16):
        gated_cycles = intruder16.gated.energy.state_cycles(ProcState.GATED)
        total = (
            intruder16.gated.parallel_time * intruder16.gated.config.num_procs
        )
        assert gated_cycles / total > 0.05

    def test_renewals_happen(self, intruder16):
        """Short same-site transactions in a loop renew their windows."""
        assert intruder16.gated.counters.get("gating.renewals", 0) > 0


class TestModerateContention:
    """genome/yada: moderate conflicts; effects small, direction varies
    (the paper itself reports one slowdown case)."""

    def test_genome_effects_are_modest(self):
        comparison = compare_gating(
            workload("genome", scale="small", seed=1),
            SystemConfig(num_procs=8, seed=1),
        )
        assert 0.9 < comparison.speedup < 1.1
        assert 0.85 < comparison.energy_reduction < 1.2

    def test_yada_saves_energy_at_low_counts(self):
        comparison = compare_gating(
            workload("yada", scale="small", seed=1),
            SystemConfig(num_procs=4, seed=1),
        )
        assert comparison.energy_reduction > 1.0


class TestEquationRelationships:
    """Eq. (7) couples Figs. 4–6: power = energy × (N2/N1)."""

    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_gating(
            workload("counter", scale="small", seed=2),
            SystemConfig(num_procs=8, seed=2),
        )

    def test_power_vs_energy_relation(self, comparison):
        assert comparison.power_reduction == pytest.approx(
            comparison.energy_reduction * comparison.n2 / comparison.n1
        )

    def test_energy_reduction_exceeds_power_reduction_when_faster(self, comparison):
        if comparison.speedup > 1:
            assert comparison.energy_reduction > comparison.power_reduction


class TestGatingCorrectnessUnderLoad:
    def test_serializability_at_scale(self):
        """The strongest end-to-end check at a meaningful size."""
        result = run_workload(
            workload("intruder", scale="small", seed=3),
            SystemConfig(num_procs=8, seed=3),
            check_serial=True,
        )
        assert result.commits > 500

    def test_wakeups_match_gates_at_scale(self):
        result = run_workload(
            workload("intruder", scale="small", seed=3),
            SystemConfig(num_procs=8, seed=3),
        )
        c = result.counters
        assert c["gating.wakeups"] == c["gating.gated"]
