"""Workload builders: structure, determinism, and end-to-end validation.

Every workload runs at tiny scale under both gating modes with full
functional validation and TID-order serializability checking — the
strongest end-to-end correctness statement in the suite.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.harness.runner import run_workload
from repro.workloads.base import SCALES
from repro.workloads.genome import build_genome
from repro.workloads.intruder import build_intruder
from repro.workloads.micro import build_bank, build_counter
from repro.workloads.registry import (
    PAPER_APPS,
    STAMP_APPS,
    available_workloads,
    build_workload,
    register_workload,
    workload_schema,
)
from repro.workloads.yada import build_yada

ALL_WORKLOADS = sorted(available_workloads())


class TestRegistry:
    def test_paper_apps_registered(self):
        assert set(PAPER_APPS) == {"genome", "yada", "intruder"}
        for app in PAPER_APPS:
            assert app in available_workloads()

    def test_stamp_apps_registered(self):
        assert set(PAPER_APPS) < set(STAMP_APPS)
        for app in STAMP_APPS:
            assert app in available_workloads()

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            build_workload("nope", 4)

    def test_register_custom(self):
        register_workload("custom-test", build_counter)
        inst = build_workload("custom-test", 2, scale="tiny")
        assert inst.num_threads == 2

    def test_register_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            register_workload("", build_counter)


class TestOverrideRejection:
    """Unknown/mistyped overrides fail by name, before any building."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_unknown_override_rejected_everywhere(self, name):
        with pytest.raises(WorkloadError, match="valid parameters"):
            build_workload(name, 2, scale="tiny", not_a_param=1)

    def test_error_lists_valid_parameters(self):
        with pytest.raises(
            WorkloadError,
            match=r"genome: unknown parameter\(s\) 'segmants'",
        ) as excinfo:
            build_workload("genome", 2, scale="tiny", segmants=10)
        message = str(excinfo.value)
        for param in ("segments", "distinct_fraction", "probes",
                      "table_slack"):
            assert param in message

    def test_multiple_unknown_keys_all_reported(self):
        with pytest.raises(WorkloadError) as excinfo:
            build_workload("counter", 2, scale="tiny", foo=1, bar=2)
        assert "'bar'" in str(excinfo.value)
        assert "'foo'" in str(excinfo.value)

    def test_mistyped_override_rejected(self):
        with pytest.raises(WorkloadError, match="expects int"):
            build_workload("counter", 2, scale="tiny", increments="many")
        with pytest.raises(WorkloadError, match="expects int"):
            build_workload("counter", 2, scale="tiny", increments=True)

    def test_float_param_accepts_int(self):
        inst = build_workload("genome", 2, scale="tiny",
                              distinct_fraction=1)
        assert inst.params["distinct_segments"] > 0

    def test_custom_builder_gets_derived_schema(self):
        register_workload("custom-schema-test", build_counter)
        schema = workload_schema("custom-schema-test")
        assert set(schema.names()) == {"increments", "work_cycles"}
        with pytest.raises(WorkloadError, match="valid parameters"):
            build_workload("custom-schema-test", 2, scale="tiny", wat=1)

    def test_var_keyword_builder_stays_permissive(self):
        """A **kwargs builder must keep accepting arbitrary overrides."""

        def build_kw(num_threads, scale="tiny", seed=0, fixed=1, **extras):
            inst = build_counter(num_threads, scale=scale, seed=seed)
            inst.params["extras"] = dict(extras, fixed=fixed)
            return inst

        register_workload("kwargs-test", build_kw)
        schema = workload_schema("kwargs-test")
        assert schema.permissive
        inst = build_workload("kwargs-test", 2, scale="tiny",
                              fixed=2, anything=5)
        assert inst.params["extras"] == {"anything": 5, "fixed": 2}
        # declared parameters are still type-checked
        with pytest.raises(WorkloadError, match="expects int"):
            build_workload("kwargs-test", 2, scale="tiny", fixed="nope")

    def test_schema_accessor_unknown_workload(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            workload_schema("nope")

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_every_schema_describes(self, name):
        text = workload_schema(name).describe()
        assert name in text


class TestBuilders:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_instance_shape(self, name):
        inst = build_workload(name, 4, scale="tiny", seed=5)
        assert inst.num_threads == 4
        assert len(inst.programs) == 4
        assert isinstance(inst.initial_memory, dict)
        assert inst.validators
        assert inst.scale == "tiny"
        assert "tiny" in inst.describe() or "tiny" == inst.scale

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_build_is_deterministic(self, name):
        a = build_workload(name, 4, scale="tiny", seed=5)
        b = build_workload(name, 4, scale="tiny", seed=5)
        assert a.initial_memory == b.initial_memory
        assert a.params == b.params

    @pytest.mark.parametrize("name", ["yada", "intruder"])
    def test_seed_changes_build(self, name):
        """Workloads with seed-derived shared state build differently."""
        a = build_workload(name, 4, scale="tiny", seed=5)
        b = build_workload(name, 4, scale="tiny", seed=6)
        assert a.initial_memory != b.initial_memory

    def test_bad_scale_rejected(self):
        for builder in (build_genome, build_yada, build_intruder):
            with pytest.raises(WorkloadError, match="scale"):
                builder(4, scale="galactic")

    def test_scales_exist(self):
        for scale in SCALES:
            inst = build_intruder(2, scale=scale)
            assert inst.params["packets"] > 0


class TestWorkloadParams:
    def test_intruder_fragments_sum_to_packets(self):
        inst = build_intruder(4, scale="tiny", seed=1)
        assert inst.params["packets"] >= 2 * inst.params["flows"]

    def test_intruder_param_overrides(self):
        inst = build_intruder(2, scale="tiny", packets=60, flows=10)
        assert inst.params["packets"] == 60
        assert inst.params["flows"] == 10

    def test_genome_distinct_fraction(self):
        inst = build_genome(2, scale="tiny", segments=100, distinct_fraction=0.5)
        assert inst.params["distinct_segments"] == 50
        assert inst.params["stream_length"] == 100

    def test_yada_grid_squared(self):
        inst = build_yada(2, scale="tiny", elements=70)
        # rounded to a full grid
        side = int(round(70 ** 0.5))
        assert inst.params["elements"] == side * side

    def test_yada_validation(self):
        with pytest.raises(WorkloadError):
            build_yada(2, scale="tiny", bad_fraction=0.0)
        with pytest.raises(WorkloadError):
            build_yada(2, scale="tiny", elements=4)

    def test_bank_conservation_params(self):
        inst = build_bank(2, scale="tiny", accounts=8)
        assert inst.params["accounts"] == 8


class TestEndToEnd:
    """Run + validate + serializability for every workload × gating mode."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    @pytest.mark.parametrize("gating", [False, True], ids=["ungated", "gated"])
    def test_runs_validated(self, name, gating):
        config = SystemConfig(num_procs=4, seed=11).with_gating(gating)
        result = run_workload(
            build_workload(name, 4, scale="tiny", seed=11),
            config,
            validate=True,
            check_serial=True,
        )
        assert result.commits > 0
        assert result.parallel_time > 0

    @pytest.mark.parametrize("name", PAPER_APPS)
    def test_same_final_state_with_and_without_gating(self, name):
        """Gating must be semantically invisible: identical inputs give
        functionally valid (not bit-identical — schedules differ) ends;
        validators confirm the canonical final state."""
        inst = build_workload(name, 4, scale="tiny", seed=2)
        config = SystemConfig(num_procs=4, seed=2)
        ungated = run_workload(inst, config.with_gating(False))
        gated = run_workload(inst, config.with_gating(True))
        # workload-specific validators ran in run_workload for both;
        # additionally both committed the same number of transactions
        # modulo retries-after-pop-None variations:
        assert ungated.commits > 0 and gated.commits > 0

    def test_single_thread_runs(self):
        config = SystemConfig(num_procs=1, seed=3)
        result = run_workload(
            build_workload("counter", 1, scale="tiny", seed=3), config
        )
        assert result.aborts == 0  # no one to conflict with

    def test_array_walk_gating_neutral(self):
        """Zero-conflict workload: gating must change nothing."""
        inst = build_workload("array_walk", 4, scale="tiny", seed=4)
        config = SystemConfig(num_procs=4, seed=4)
        ungated = run_workload(inst, config.with_gating(False))
        gated = run_workload(inst, config.with_gating(True))
        assert gated.counters.get("gating.gated", 0) == 0
        assert gated.parallel_time == ungated.parallel_time
