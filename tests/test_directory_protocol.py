"""Directory-level protocol behaviour and commit-ordering invariants."""

from __future__ import annotations

import pytest

from repro.config import GatingConfig, SystemConfig
from repro.errors import ProtocolError
from repro.htm.machine import Machine
from repro.htm.ops import Compute, Load, Store, TxOp
from repro.htm.program import ThreadProgram
from repro.mem.messages import FlushRequest
from repro.sim.trace import TraceRecorder

HOT = 0x2000


def idle_program(ctx):
    return
    yield  # pragma: no cover - generator marker


def run_programs(program_fns, gating=False, seed=0, trace=None, num_dirs=None):
    config = SystemConfig(
        num_procs=len(program_fns),
        num_dirs=num_dirs,
        seed=seed,
        gating=GatingConfig(enabled=gating),
    )
    programs = [ThreadProgram(fn, f"t{i}") for i, fn in enumerate(program_fns)]
    machine = Machine(config, programs, trace=trace)
    return machine, machine.run()


class TestSharerTracking:
    def test_fill_registers_sharer(self):
        def program(ctx):
            yield Load(HOT)

        machine, _ = run_programs([program])
        line = machine.addr_map.line_of(HOT)
        home = machine.dir(machine.addr_map.home_of_line(line))
        assert 0 in home.sharers_of(line)

    def test_commit_rehomes_ownership(self):
        def program(ctx):
            def body(tx):
                yield Store(HOT, 5)

            yield TxOp(body, site="w")

        machine, _ = run_programs([program])
        line = machine.addr_map.line_of(HOT)
        home = machine.dir(machine.addr_map.home_of_line(line))
        assert home.owner_of(line) == 0
        assert home.sharers_of(line) == frozenset({0})

    def test_invalidation_drops_other_sharers(self):
        def reader(ctx):
            yield Load(HOT)
            yield Compute(3000)  # outlive the writer's commit

        def writer(ctx):
            yield Compute(400)

            def body(tx):
                yield Store(HOT, 1)

            yield TxOp(body, site="w")

        machine, _ = run_programs([reader, writer])
        line = machine.addr_map.line_of(HOT)
        home = machine.dir(machine.addr_map.home_of_line(line))
        assert home.sharers_of(line) == frozenset({1})
        assert not machine.proc(0).cache.contains(line)

    def test_wrong_home_rejected(self):
        machine, _ = run_programs([idle_program])
        # single proc -> single dir; fabricate a bad-home request on a
        # multi-dir machine instead:
        config = SystemConfig(num_procs=2, seed=0, gating=GatingConfig(enabled=False))
        programs = [ThreadProgram(idle_program, "a") for _ in range(2)]
        m2 = Machine(config, programs)
        wrong = m2.dir(0)
        from repro.mem.messages import FillRequest

        with pytest.raises(ProtocolError, match="homed"):
            wrong.receive_fill_request(FillRequest(0, line=1))  # line 1 -> dir 1


class TestCommitOrdering:
    def test_flush_tids_monotone_per_directory(self):
        """Invariant 9: directory watermarks only move forward; the
        directory itself raises if a flush arrives out of order."""
        trace = TraceRecorder(kinds=("tx",))

        def make():
            def program(ctx):
                def body(tx):
                    value = yield Load(HOT)
                    yield Store(HOT, value + 1)

                for _ in range(8):
                    yield TxOp(body, site="inc")

            return program

        machine, _ = run_programs([make(), make(), make()], trace=trace)
        for directory in machine.dirs:
            assert directory.last_committed_tid >= -1  # reached without raising

    def test_commit_times_follow_tid_order(self):
        """Completion barrier: commits complete in TID order."""
        def make():
            def program(ctx):
                def body(tx):
                    value = yield Load(HOT)
                    yield Store(HOT, value + 1)

                for _ in range(6):
                    yield TxOp(body, site="inc")

            return program

        config = SystemConfig(num_procs=3, seed=1, gating=GatingConfig(enabled=False))
        programs = [ThreadProgram(make(), f"t{i}") for i in range(3)]
        machine = Machine(config, programs, validation_mode=True)
        result = machine.run()
        log = sorted(result.commit_log, key=lambda t: t.tid)
        times = [tx.commit_time for tx in log]
        assert times == sorted(times)

    def test_stale_flush_rejected_by_watermark(self):
        config = SystemConfig(num_procs=1, seed=0, gating=GatingConfig(enabled=False))
        machine = Machine(config, [ThreadProgram(idle_program, "t0")])
        machine.run()
        directory = machine.dir(0)
        directory.last_committed_tid = 10
        with pytest.raises(ProtocolError, match="watermark"):
            directory.receive_flush_request(
                FlushRequest(0, tid=5, lines=(0,), writes=())
            )

    def test_marked_set_empty_after_run(self):
        def make():
            def program(ctx):
                def body(tx):
                    value = yield Load(HOT)
                    yield Store(HOT, value + 1)

                for _ in range(5):
                    yield TxOp(body, site="inc")

            return program

        machine, _ = run_programs([make(), make()])
        for directory in machine.dirs:
            assert directory.marked == set()


class TestMultiDirectoryCommit:
    def test_write_set_spanning_directories(self):
        """A transaction writing lines homed at different directories
        flushes to all of them atomically."""
        addrs = [0x2000, 0x2040, 0x2080, 0x20C0]  # four consecutive lines

        def program(ctx):
            def body(tx):
                for i, addr in enumerate(addrs):
                    yield Store(addr, i + 1)

            yield TxOp(body, site="multi")

        machine, result = run_programs([program, idle_program], num_dirs=4)
        for i, addr in enumerate(addrs):
            assert machine.memory.read_word(addr) == i + 1
        # homes really differ
        homes = {machine.addr_map.home_of_addr(a) for a in addrs}
        assert len(homes) == 4

    def test_futile_spin_abort_while_committing(self):
        """The paper's motivating scenario: a processor spinning at its
        commit instruction is aborted by an older committer."""
        trace = TraceRecorder(kinds=("tx",))

        def make(delay):
            def program(ctx):
                def body(tx):
                    value = yield Load(HOT)
                    yield Compute(60)
                    yield Store(HOT, value + 1)

                yield Compute(delay)
                for _ in range(6):
                    yield TxOp(body, site="inc")

            return program

        machine, result = run_programs(
            [make(0), make(3), make(6), make(9)], trace=trace
        )
        assert result.counters().get("tx.aborts_while_committing", 0) > 0
        assert machine.memory.read_word(HOT) == 24  # still atomic
