"""The declarative figure pipeline: registry, extractors, builder, CLI.

The golden-fixture tests rebuild every registered artifact from the
committed result store at ``tests/data/figstore`` — asserting ZERO
residual simulations — and compare the produced JSON byte-for-byte
against ``tests/data/figures_golden``.  Regenerate both with
``scripts/regen_fig_golden.py`` only when behaviour legitimately
changes.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.figreport import format_figure, load_figure
from repro.errors import FigureError
from repro.figures import (
    FigureBuilder,
    FigureParams,
    FigureSpec,
    available_extractors,
    available_figures,
    csv_rows,
    figure_digest,
    get_extractor,
    get_figure,
    register_extractor,
    register_figure,
)
from repro.figures.registry import eval_grid_suite, w0_grid_suite
from repro.power.model import PowerModel
from repro.scenarios.runner import Shard

DATA = Path(__file__).parent / "data"

#: mirrors scripts/regen_fig_golden.py — the committed store covers this
GOLDEN_PARAMS = FigureParams(
    scale="tiny", seed=0, procs=(2, 4), w0=8, w0_values=(2, 8)
)

#: a 3-unique-job grid for fast live-simulation tests
TINY_PARAMS = FigureParams(
    scale="tiny", seed=0, apps=("counter",), procs=(2,), w0=2,
    w0_values=(2, 4),
)

PAPER_ARTIFACTS = (
    "fig3", "fig4", "fig5", "fig6", "fig7", "table1", "table2", "headline",
    "perf-trend",
)


@pytest.fixture()
def golden_store(tmp_path):
    """A scratch copy of the committed store (tests must not touch it)."""
    target = tmp_path / "figstore"
    shutil.copytree(DATA / "figstore", target)
    return target


# ----------------------------------------------------------------------
# registry + specs
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        assert tuple(available_figures()) == PAPER_ARTIFACTS

    def test_unknown_figure(self):
        with pytest.raises(FigureError, match="unknown figure"):
            get_figure("fig99")

    def test_duplicate_registration_requires_overwrite(self):
        spec = get_figure("fig4")
        with pytest.raises(FigureError, match="already registered"):
            register_figure(spec)
        assert register_figure(spec, overwrite=True) is spec

    def test_figures_share_the_eval_suite(self):
        params = FigureParams()
        eval_json = eval_grid_suite(params).to_json()
        for name in ("fig4", "fig5", "fig6", "headline"):
            resolved = get_figure(name).resolve_suite(params)
            assert resolved.to_json() == eval_json
        assert get_figure("fig7").resolve_suite(params).to_json() \
            == w0_grid_suite(params).to_json()

    def test_analytic_figures_have_no_suite(self):
        for name in ("fig3", "table1", "table2"):
            assert get_figure(name).resolve_suite(FigureParams()) is None

    def test_bad_kind(self):
        with pytest.raises(FigureError, match="kind"):
            FigureSpec(name="x", title="x", extractor="fig3-cache-power",
                       kind="chart")


class TestParams:
    def test_lists_coerce_to_tuples(self):
        params = FigureParams(apps=["counter"], procs=[2], w0_values=[2])
        assert params.apps == ("counter",)
        assert params.procs == (2,)
        assert params.w0_values == (2,)

    def test_empty_axes_rejected(self):
        with pytest.raises(FigureError):
            FigureParams(apps=())

    def test_system_config_defaults_to_largest_grid(self):
        config = FigureParams(procs=(2, 8)).system_config()
        assert config.num_procs == 8
        assert config.gating.w0 == 8


class TestDigest:
    def test_digest_is_stable(self):
        spec = get_figure("fig4")
        params = FigureParams()
        power = PowerModel.derive()
        suite = spec.resolve_suite(params)
        assert figure_digest(spec, suite, params, power) \
            == figure_digest(spec, suite, params, power)

    def test_digest_tracks_params_and_extractor_version(self):
        power = PowerModel.derive()
        spec = get_figure("fig4")
        a = figure_digest(spec, spec.resolve_suite(FigureParams()),
                          FigureParams(), power)
        shrunk = FigureParams(procs=(2,))
        b = figure_digest(spec, spec.resolve_suite(shrunk), shrunk, power)
        assert a != b

        register_extractor("test-versioned", version=1)(lambda ctx: {})
        probe = FigureSpec(name="probe", title="p",
                           extractor="test-versioned")
        v1 = figure_digest(probe, None, FigureParams(), power)
        register_extractor("test-versioned", version=2)(lambda ctx: {})
        v2 = figure_digest(probe, None, FigureParams(), power)
        assert v1 != v2


# ----------------------------------------------------------------------
# extractors
# ----------------------------------------------------------------------
class TestExtractors:
    def test_all_registered(self):
        names = available_extractors()
        for spec_name in PAPER_ARTIFACTS:
            assert get_figure(spec_name).extractor in names

    def test_unknown_extractor(self):
        with pytest.raises(FigureError, match="unknown extractor"):
            get_extractor("no-such-extractor")

    def test_missing_grid_point_is_loud(self):
        from repro.figures.extract import fig4_rows

        with pytest.raises(FigureError, match="missing the"):
            fig4_rows({}, ("genome",), (4,))


# ----------------------------------------------------------------------
# incremental builds (live tiny simulations)
# ----------------------------------------------------------------------
class TestIncrementalBuild:
    def test_second_build_is_zero_simulations_and_byte_identical(
        self, tmp_path
    ):
        builder = FigureBuilder(
            store=tmp_path / "store", out_dir=tmp_path / "figs",
            params=TINY_PARAMS,
        )
        first = builder.build()
        # eval grid: ungated + gated@2; fig7 adds gated@4 (baseline shared)
        assert first.executed == 3
        assert first.total_jobs == 3
        assert {a.status for a in first.artifacts} == {"built"}
        cold = {
            a.name: a.path.read_bytes() for a in first.artifacts
        }

        second = builder.build()
        assert second.executed == 0
        assert second.planned_misses == 0
        assert {a.status for a in second.artifacts} == {"fresh"}
        for artifact in second.artifacts:
            assert artifact.path.read_bytes() == cold[artifact.name]

        forced = builder.build(force=True)
        assert forced.executed == 0
        assert {a.status for a in forced.artifacts} == {"rebuilt"}
        for artifact in forced.artifacts:
            assert artifact.path.read_bytes() == cold[artifact.name]

    def test_param_change_goes_stale(self, tmp_path):
        builder = FigureBuilder(store=tmp_path / "s", out_dir=tmp_path / "f",
                                params=TINY_PARAMS)
        builder.build(names=["table2"])
        grown = FigureBuilder(
            store=tmp_path / "s", out_dir=tmp_path / "f",
            params=FigureParams(
                scale="tiny", seed=0, apps=("counter",), procs=(4,), w0=2,
                w0_values=(2, 4),
            ),
        )
        (status,) = grown.status(names=["table2"])
        assert status.artifact == "stale"
        report = grown.build(names=["table2"])
        assert report.artifacts[0].status == "rebuilt"

    def test_only_selection_and_unknown_names(self, tmp_path):
        builder = FigureBuilder(store=tmp_path / "s", out_dir=tmp_path / "f",
                                params=TINY_PARAMS)
        report = builder.build(names=["table1", "fig3"])
        # presentation order is kept regardless of request order
        assert [a.name for a in report.artifacts] == ["fig3", "table1"]
        assert report.executed == 0  # analytic only
        with pytest.raises(FigureError, match="unknown figure"):
            builder.build(names=["figx"])

    def test_data_requires_coverage(self, tmp_path):
        builder = FigureBuilder(store=tmp_path / "s", out_dir=tmp_path / "f",
                                params=TINY_PARAMS)
        with pytest.raises(FigureError, match="does not cover"):
            builder.data("fig4")
        assert builder.data("table1")["rows"]  # analytic: no coverage needed

    def test_sharded_build_then_merge_completes(self, tmp_path):
        shard1 = FigureBuilder(store=tmp_path / "s1", out_dir=tmp_path / "f1",
                               params=TINY_PARAMS)
        r1 = shard1.build(shard=Shard(1, 2))
        shard2 = FigureBuilder(store=tmp_path / "s2", out_dir=tmp_path / "f2",
                               params=TINY_PARAMS)
        r2 = shard2.build(shard=Shard(2, 2))
        # the two shards cover the 3-job list exactly once between them
        assert r1.executed + r2.executed == 3
        assert 0 < r1.executed < 3 and 0 < r2.executed < 3
        # fig7 needs all three jobs, so neither shard can render it alone
        for report in (r1, r2):
            assert {a.name for a in report.artifacts
                    if a.status == "incomplete"} >= {"fig7"}

        from repro.exec.store import ResultStore

        merged = ResultStore(tmp_path / "merged")
        merged.merge_from(ResultStore(tmp_path / "s1"))
        merged.merge_from(ResultStore(tmp_path / "s2"))
        final = FigureBuilder(store=merged, out_dir=tmp_path / "f",
                              params=TINY_PARAMS)
        report = final.build()
        assert report.executed == 0
        assert all(a.status in ("built", "rebuilt", "fresh")
                   for a in report.artifacts)


# ----------------------------------------------------------------------
# golden fixture: byte-stable artifacts, zero simulations
# ----------------------------------------------------------------------
class TestGoldenStore:
    def _normalized(self, payload: dict) -> bytes:
        payload = json.loads(json.dumps(payload))
        payload["provenance"]["git_sha"] = None
        return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()

    def test_every_figure_builds_byte_stable_from_the_committed_store(
        self, tmp_path, golden_store, monkeypatch
    ):
        # perf-trend reads BENCH_*.json: pin it to the committed fixture
        # series so new repo-root bench files don't churn the goldens
        monkeypatch.setenv("REPRO_BENCH_DIR", str(DATA / "bench_series"))
        builder = FigureBuilder(
            store=golden_store, out_dir=tmp_path / "out",
            params=GOLDEN_PARAMS,
        )
        report = builder.build()
        assert report.executed == 0, (
            "committed figstore no longer covers the golden grid — "
            "simulation semantics or digests changed; see "
            "scripts/regen_fig_golden.py"
        )
        assert report.planned_misses == 0
        assert [a.name for a in report.artifacts] == list(PAPER_ARTIFACTS)
        for artifact in report.artifacts:
            golden = (DATA / "figures_golden" / f"{artifact.name}.json")
            produced = self._normalized(
                json.loads(artifact.path.read_text(encoding="utf-8"))
            )
            assert produced == golden.read_bytes(), (
                f"{artifact.name} drifted from its golden; regenerate "
                f"with scripts/regen_fig_golden.py if intended"
            )

    def test_golden_headline_covers_the_grid(self, tmp_path, golden_store):
        builder = FigureBuilder(store=golden_store, out_dir=tmp_path,
                                params=GOLDEN_PARAMS)
        headline = builder.data("headline")
        assert headline["points"] == float(
            len(GOLDEN_PARAMS.apps) * len(GOLDEN_PARAMS.procs)
        )

    def test_provenance_records_jobs_and_suite(self, golden_store, tmp_path):
        builder = FigureBuilder(store=golden_store, out_dir=tmp_path / "o",
                                params=GOLDEN_PARAMS)
        report = builder.build(names=["fig7"])
        payload = json.loads(report.artifacts[0].path.read_text())
        prov = payload["provenance"]
        assert prov["extractor"] == {"name": "fig7-w0-sensitivity",
                                     "version": 1}
        assert prov["suite"]["name"] == "paper-fig7"
        assert prov["store_backend"] == "jsonl"
        assert prov["jobs"] == sorted(prov["jobs"])
        assert len(prov["jobs"]) > 0
        assert prov["figure_digest"] == report.artifacts[0].digest


# ----------------------------------------------------------------------
# renderers + figreport
# ----------------------------------------------------------------------
class TestRenderers:
    def test_csv_shapes(self, golden_store, tmp_path):
        builder = FigureBuilder(store=golden_store, out_dir=tmp_path / "o",
                                params=GOLDEN_PARAMS)
        report = builder.build(csv=True)
        for artifact in report.artifacts:
            headers, rows = csv_rows(load_figure(artifact.path))
            assert headers and rows
            assert artifact.path.with_suffix(".csv").exists()
        fig7 = load_figure(tmp_path / "o" / "fig7.json")
        headers, rows = csv_rows(fig7)
        assert headers == ["app", "procs", "w0", "speedup"]
        assert len(rows) == (
            len(GOLDEN_PARAMS.apps) * len(GOLDEN_PARAMS.procs)
            * len(GOLDEN_PARAMS.w0_values)
        )

    def test_png_needs_matplotlib(self, golden_store, tmp_path):
        builder = FigureBuilder(store=golden_store, out_dir=tmp_path / "o",
                                params=GOLDEN_PARAMS)
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            with pytest.raises(FigureError, match="matplotlib"):
                builder.build(names=["fig7"], png=True)
        else:  # pragma: no cover - env-dependent branch
            report = builder.build(names=["fig7"], png=True)
            assert report.artifacts[0].path.with_suffix(".png").exists()

    def test_format_figure_every_artifact(self, golden_store, tmp_path):
        builder = FigureBuilder(store=golden_store, out_dir=tmp_path / "o",
                                params=GOLDEN_PARAMS)
        report = builder.build()
        for artifact in report.artifacts:
            text = format_figure(load_figure(artifact.path))
            assert get_figure(artifact.name).title.split("—")[0][:20] in text

    def test_load_figure_rejects_non_artifacts(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[]")
        with pytest.raises(FigureError, match="not a figure artifact"):
            load_figure(path)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestFiguresCli:
    TINY_FLAGS = ["--scale", "tiny", "--apps", "counter", "--grid", "2",
                  "--w0", "2", "--w0-values", "2", "4"]

    def run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        out = capsys.readouterr()
        return code, out.out, out.err

    def test_list(self, capsys):
        code, out, _err = self.run(capsys, "figures", "list")
        assert code == 0
        for name in PAPER_ARTIFACTS:
            assert name in out

    def test_status_without_store(self, capsys, tmp_path):
        code, out, err = self.run(
            capsys, "figures", "status",
            "--cache-dir", str(tmp_path / "nope"),
            "--out-dir", str(tmp_path / "figs"), *self.TINY_FLAGS,
        )
        assert code == 0
        assert "missing" in out
        assert "no result store" in err
        assert not (tmp_path / "nope").exists()

    def test_build_twice_is_incremental(self, capsys, tmp_path):
        argv = ["figures", "build",
                "--cache-dir", str(tmp_path / "cache"),
                "--out-dir", str(tmp_path / "figs"), *self.TINY_FLAGS]
        code, out, _err = self.run(capsys, *argv)
        assert code == 0
        assert "simulated 3 residual job(s)" in out
        code, out, _err = self.run(capsys, *argv)
        assert code == 0
        assert "simulated 0 residual job(s)" in out
        assert "9 fresh" in out

        code, out, _err = self.run(capsys, "figures", "status",
                                   "--cache-dir", str(tmp_path / "cache"),
                                   "--out-dir", str(tmp_path / "figs"),
                                   *self.TINY_FLAGS)
        assert code == 0
        assert "stale" not in out
        assert "0 artifact(s) need building" in out

    def test_build_only_show(self, capsys, tmp_path):
        code, out, _err = self.run(
            capsys, "figures", "build", "--only", "table1", "--show",
            "--cache-dir", str(tmp_path / "cache"),
            "--out-dir", str(tmp_path / "figs"), *self.TINY_FLAGS,
        )
        assert code == 0
        assert "table1: built" in out
        assert "Power model" in out
        assert not (tmp_path / "figs" / "fig4.json").exists()


class TestReviewRegressions:
    """Fixes from the PR's own review pass."""

    def test_csv_export_works_on_fresh_artifacts(self, tmp_path):
        builder = FigureBuilder(store=tmp_path / "s", out_dir=tmp_path / "f",
                                params=TINY_PARAMS)
        builder.build(names=["table1"])            # JSON only
        report = builder.build(names=["table1"], csv=True)
        assert report.artifacts[0].status == "fresh"
        assert (tmp_path / "f" / "table1.csv").exists()

    def test_residual_jobs_deduplicates_across_figures(self, tmp_path):
        builder = FigureBuilder(store=tmp_path / "s", out_dir=tmp_path / "f",
                                params=TINY_PARAMS)
        # per-figure miss counts overlap (fig4/5/6/headline share the
        # eval suite; fig7 shares jobs with it) — the aggregate must
        # match what a build would actually simulate
        misses, total = builder.residual_jobs()
        assert (misses, total) == (3, 3)
        assert builder.build().executed == 3
        assert builder.residual_jobs() == (0, 3)

    def test_cli_status_reports_unique_residuals(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["figures", "status",
                     "--cache-dir", str(tmp_path / "nope"),
                     "--out-dir", str(tmp_path / "figs"),
                     *TestFiguresCli.TINY_FLAGS])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 residual simulation(s)" in out

    def test_throwaway_store_is_cleaned_up(self):
        import gc
        from pathlib import Path as _Path

        builder = FigureBuilder(store=None, params=TINY_PARAMS)
        tmp = _Path(builder.store.directory)
        assert tmp.exists()
        builder.store.close()
        del builder
        gc.collect()
        assert not tmp.exists()


class TestGridParity:
    """The figure grids must lower to the same job digests as the other
    two spellings of the paper grid (built-in suites, EvaluationSuite)
    — that equality is what lets all three share one result store."""

    def test_eval_grid_digests_match_builtin_and_harness(self):
        from repro.harness.experiments import EvaluationSuite
        from repro.scenarios.builtin import get_suite

        params = FigureParams(scale="tiny", seed=0)
        figures_jobs = {
            s.to_job().digest for s in eval_grid_suite(params).expand()
        }
        builtin_jobs = {
            s.to_job().digest
            for s in get_suite("paper-eval", scale="tiny", seed=0).expand()
        }
        harness_jobs = {
            s.to_job().digest
            for s in EvaluationSuite(scale="tiny", seed=0)
            .scenario_suite().expand()
        }
        assert figures_jobs == builtin_jobs == harness_jobs

    def test_w0_grid_digests_match_builtin(self):
        from repro.scenarios.builtin import get_suite

        params = FigureParams(scale="tiny", seed=0)
        figures_jobs = {
            s.to_job().digest for s in w0_grid_suite(params).expand()
        }
        builtin_jobs = {
            s.to_job().digest
            for s in get_suite("paper-fig7", scale="tiny", seed=0).expand()
        }
        assert figures_jobs == builtin_jobs


class TestDataShapeRobustness:
    def test_scalar_mapping_with_speedup_key_is_not_a_matrix(self):
        from repro.figures.render import data_shape

        assert data_shape({"speedup": 1.2, "energy_saved": 0.9}) == "scalars"
        assert data_shape({"normalized_power": 1.5}) == "scalars"
        assert data_shape(
            {"speedup": {"genome": {}}, "apps": ["genome"]}
        ) == "matrix"
        assert data_shape([1, 2]) == "unknown"
