"""L1 cache: geometry, LRU, speculative-bit lifecycle."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.config import CacheConfig
from repro.mem.cache import L1Cache
from repro.sim.stats import StatsRegistry


def make_cache(size=1024, line=64, ways=2):
    """Default test cache: 1 KB / 64 B / 2-way = 8 sets."""
    return L1Cache(CacheConfig(size_bytes=size, line_bytes=line, ways=ways), 0,
                   StatsRegistry())


class TestGeometryAndLookup:
    def test_set_index_wraps(self):
        cache = make_cache()  # 8 sets
        assert cache.set_index(0) == 0
        assert cache.set_index(7) == 7
        assert cache.set_index(8) == 0
        assert cache.set_index(17) == 1

    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(5) is None
        cache.fill(5)
        assert cache.contains(5)
        assert cache.touch(5) is not None

    def test_fill_idempotent(self):
        cache = make_cache()
        cache.fill(5)
        assert cache.fill(5) is None
        assert cache.occupancy() == 1


class TestReplacement:
    def test_lru_eviction_within_set(self):
        cache = make_cache()  # 2 ways
        cache.fill(0)   # set 0
        cache.fill(8)   # set 0
        cache.touch(0)  # 0 is now MRU
        victim = cache.fill(16)  # set 0 again
        assert victim == 8
        assert cache.contains(0)
        assert not cache.contains(8)

    def test_no_cross_set_eviction(self):
        cache = make_cache()
        cache.fill(0)
        cache.fill(1)
        cache.fill(2)
        assert cache.occupancy() == 3

    def test_non_speculative_preferred_as_victim(self):
        cache = make_cache()
        cache.fill(0)
        cache.fill(8)
        cache.mark_spec_read(0)
        cache.touch(0)
        cache.touch(8)  # 8 is MRU and non-spec; 0 is LRU but speculative
        victim = cache.fill(16)
        assert victim == 8  # the non-speculative line goes first

    def test_speculative_eviction_as_last_resort(self):
        cache = make_cache()
        cache.fill(0)
        cache.fill(8)
        cache.mark_spec_read(0)
        cache.mark_spec_written(8)
        victim = cache.fill(16)
        assert victim in (0, 8)  # allowed: conflict detection survives
        stats = cache._stats  # noqa: SLF001 - test introspection
        assert stats.get("proc0.cache.spec_evictions") == 1


class TestSpeculativeBits:
    def test_mark_requires_residency(self):
        cache = make_cache()
        cache.mark_spec_read(3)  # absent: silently ignored
        cache.fill(3)
        cache.mark_spec_read(3)
        entry = cache.lookup(3)
        assert entry.spec_read and not entry.spec_written
        assert entry.speculative

    def test_clear_on_commit_keeps_lines(self):
        cache = make_cache()
        cache.fill(1)
        cache.fill(2)
        cache.mark_spec_read(1)
        cache.mark_spec_written(2)
        cache.clear_speculative([1, 2], commit=True)
        assert cache.contains(1) and cache.contains(2)
        assert not cache.lookup(1).speculative
        assert not cache.lookup(2).speculative

    def test_clear_on_abort_drops_written_lines(self):
        cache = make_cache()
        cache.fill(1)
        cache.fill(2)
        cache.mark_spec_read(1)
        cache.mark_spec_written(2)
        cache.clear_speculative([1, 2], commit=False)
        assert cache.contains(1)          # read data still mirrors memory
        assert not cache.contains(2)      # written data was never real
        assert not cache.lookup(1).speculative

    def test_clear_tolerates_absent_lines(self):
        cache = make_cache()
        cache.clear_speculative([1, 2, 3], commit=False)

    def test_speculative_lines_iterator(self):
        cache = make_cache()
        for line in (1, 2, 3):
            cache.fill(line)
        cache.mark_spec_read(1)
        cache.mark_spec_written(3)
        assert sorted(cache.speculative_lines()) == [1, 3]


class TestInvalidation:
    def test_invalidate_resident(self):
        cache = make_cache()
        cache.fill(4)
        assert cache.invalidate(4)
        assert not cache.contains(4)

    def test_invalidate_absent(self):
        cache = make_cache()
        assert not cache.invalidate(4)


class _RefCache:
    """Reference model: per-set LRU list, evicting non-spec first."""

    def __init__(self, sets, ways):
        self.sets = [dict() for _ in range(sets)]  # line -> spec flag
        self.order = [[] for _ in range(sets)]  # LRU order, oldest first
        self.ways = ways
        self.n = sets

    def fill(self, line):
        s = line % self.n
        if line in self.sets[s]:
            self.order[s].remove(line)
            self.order[s].append(line)
            return None
        victim = None
        if len(self.sets[s]) >= self.ways:
            non_spec = [l for l in self.order[s] if not self.sets[s][l]]
            victim = non_spec[0] if non_spec else self.order[s][0]
            del self.sets[s][victim]
            self.order[s].remove(victim)
        self.sets[s][line] = False
        self.order[s].append(line)
        return victim

    def touch(self, line):
        s = line % self.n
        if line in self.sets[s]:
            self.order[s].remove(line)
            self.order[s].append(line)
            return True
        return False

    def mark(self, line):
        s = line % self.n
        if line in self.sets[s]:
            self.sets[s][line] = True


@given(
    st.lists(
        st.tuples(st.sampled_from(["fill", "touch", "mark"]), st.integers(0, 31)),
        max_size=200,
    )
)
def test_cache_matches_reference_model(ops):
    """Residency and victims agree with a straightforward reference LRU."""
    cache = make_cache(size=512, line=64, ways=2)  # 4 sets
    ref = _RefCache(sets=4, ways=2)
    for op, line in ops:
        if op == "fill":
            assert cache.fill(line) == ref.fill(line)
        elif op == "touch":
            assert (cache.touch(line) is not None) == ref.touch(line)
        else:
            cache.mark_spec_read(line)
            ref.mark(line)
    resident = sorted(cache.resident_lines())
    ref_resident = sorted(l for s in ref.sets for l in s)
    assert resident == ref_resident


class TestPartialLines:
    """Store-allocated lines hold only written words (per-word valid
    bits in hardware); see the serializability bug note in the class
    docstring of CacheLineState."""

    def test_partial_fill_marks_partial(self):
        cache = make_cache()
        cache.fill(3, partial=True)
        assert cache.lookup(3).partial

    def test_completing_fill_upgrades(self):
        cache = make_cache()
        cache.fill(3, partial=True)
        cache.fill(3)  # data arrives
        assert not cache.lookup(3).partial

    def test_partial_fill_does_not_downgrade(self):
        cache = make_cache()
        cache.fill(3)               # complete line
        cache.fill(3, partial=True)  # a store on a complete line
        assert not cache.lookup(3).partial

    def test_partial_survives_until_completed(self):
        cache = make_cache()
        cache.fill(3, partial=True)
        cache.touch(3)
        assert cache.lookup(3).partial
