"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (
    BusConfig,
    CacheConfig,
    CommitConfig,
    DirectoryConfig,
    GatingConfig,
    MemoryConfig,
    SystemConfig,
)


@pytest.fixture
def small_config() -> SystemConfig:
    """A 4-core Table II system with gating enabled."""
    return SystemConfig(num_procs=4, seed=7)


@pytest.fixture
def ungated_config() -> SystemConfig:
    return SystemConfig(num_procs=4, seed=7).with_gating(False)


@pytest.fixture
def fast_memory_config() -> SystemConfig:
    """Low-latency variant for protocol tests that count exact cycles."""
    return SystemConfig(
        num_procs=2,
        seed=1,
        bus=BusConfig(occupancy=1, data_occupancy=1, wire_latency=1),
        directory=DirectoryConfig(latency=2, commit_line_cycles=1),
        memory=MemoryConfig(latency=5, port_occupancy=1),
        commit=CommitConfig(token_vendor_latency=1, abort_drain_cycles=1),
        gating=GatingConfig(enabled=False),
    )
