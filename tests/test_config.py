"""Configuration validation and Table II defaults."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    BusConfig,
    CacheConfig,
    CommitConfig,
    DirectoryConfig,
    GatingConfig,
    MemoryConfig,
    SystemConfig,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_table2_defaults(self):
        cache = CacheConfig()
        assert cache.size_bytes == 64 * 1024
        assert cache.line_bytes == 64
        assert cache.ways == 2
        assert cache.hit_latency == 1

    def test_geometry(self):
        cache = CacheConfig()
        assert cache.num_lines == 1024
        assert cache.num_sets == 512

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(line_bytes=48)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigError):
            CacheConfig(ways=0)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=2)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig(hit_latency=-1)

    def test_direct_mapped_allowed(self):
        cache = CacheConfig(size_bytes=4096, line_bytes=64, ways=1)
        assert cache.num_sets == 64


class TestBusConfig:
    def test_defaults(self):
        bus = BusConfig()
        assert bus.occupancy >= 1
        assert bus.data_occupancy >= bus.occupancy

    def test_rejects_zero_occupancy(self):
        with pytest.raises(ConfigError):
            BusConfig(occupancy=0)

    def test_rejects_negative_wire(self):
        with pytest.raises(ConfigError):
            BusConfig(wire_latency=-1)


class TestDirectoryConfig:
    def test_table2_latency(self):
        assert DirectoryConfig().latency == 10

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            DirectoryConfig(latency=-1)


class TestMemoryConfig:
    def test_table2_defaults(self):
        mem = MemoryConfig()
        assert mem.size_bytes == 1 << 30
        assert mem.latency == 100
        assert mem.ports == 1

    def test_occupancy_bounded_by_latency(self):
        with pytest.raises(ConfigError):
            MemoryConfig(latency=5, port_occupancy=10)

    def test_rejects_zero_ports(self):
        with pytest.raises(ConfigError):
            MemoryConfig(ports=0)


class TestGatingConfig:
    def test_defaults_match_paper(self):
        gating = GatingConfig()
        assert gating.enabled
        assert gating.w0 == 8  # "For our experiments, we have used W0=8"
        assert gating.abort_counter_bits == 8
        assert gating.abort_counter_max == 255

    def test_rejects_zero_w0(self):
        with pytest.raises(ConfigError):
            GatingConfig(w0=0)

    def test_counter_width_bounds(self):
        with pytest.raises(ConfigError):
            GatingConfig(abort_counter_bits=0)
        with pytest.raises(ConfigError):
            GatingConfig(abort_counter_bits=65)

    def test_counter_max(self):
        assert GatingConfig(abort_counter_bits=4).abort_counter_max == 15


class TestSystemConfig:
    def test_default_dirs_match_procs(self):
        assert SystemConfig(num_procs=8).effective_num_dirs == 8

    def test_explicit_dirs(self):
        assert SystemConfig(num_procs=8, num_dirs=4).effective_num_dirs == 4

    def test_or_circuit_derived(self):
        # ceil(log2(p)) with a floor of 1
        assert SystemConfig(num_procs=16).effective_or_circuit_cycles == 4
        assert SystemConfig(num_procs=4).effective_or_circuit_cycles == 2
        assert SystemConfig(num_procs=1).effective_or_circuit_cycles == 1

    def test_or_circuit_override(self):
        config = SystemConfig(
            num_procs=16, gating=GatingConfig(or_circuit_cycles=7)
        )
        assert config.effective_or_circuit_cycles == 7

    def test_with_gating_flips_only_the_switch(self):
        base = SystemConfig(num_procs=8, seed=42)
        off = base.with_gating(False)
        assert not off.gating.enabled
        assert off.gating.w0 == base.gating.w0
        assert off.num_procs == base.num_procs
        assert off.seed == base.seed

    def test_with_w0(self):
        assert SystemConfig().with_w0(32).gating.w0 == 32

    def test_configs_are_frozen(self):
        config = SystemConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.num_procs = 8  # type: ignore[misc]

    def test_rejects_bad_proc_count(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_procs=0)

    def test_table2_rows(self):
        rows = dict(SystemConfig(num_procs=16).table2_rows())
        assert rows["CPU"] == "16 single issue in-order cores"
        assert "64KB 64 byte line size" in rows["L1D"]
        assert "2-way associative" in rows["L1D"]
        assert rows["Interconnect"] == "Common Split-Transaction Bus"
        assert "10 cycle latency" in rows["Directory"]
        assert "1GB" in rows["Main Memory"]
        assert "100 cycle" in rows["Main Memory"]


class TestCommitConfig:
    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            CommitConfig(token_vendor_latency=-1)
        with pytest.raises(ConfigError):
            CommitConfig(abort_drain_cycles=-1)
