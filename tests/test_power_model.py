"""Table I derivation and power-model contracts."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.power.model import PowerModel, PowerModelParams
from repro.power.states import (
    LOW_POWER_STATES_GATED,
    LOW_POWER_STATES_UNGATED,
    ProcState,
)


class TestDerivation:
    def test_table1_values(self):
        """Section VII: commit = 0.2 + 0.8(0.15+0.05+0.10) = 0.44;
        miss = 0.2 + 0.8·0.5·(0.30) = 0.32; gated = leakage = 0.20."""
        model = PowerModel.derive()
        assert model.run == 1.0
        assert model.commit == pytest.approx(0.44)
        assert model.miss == pytest.approx(0.32)
        assert model.gated == pytest.approx(0.20)

    def test_tcc_dcache_fraction(self):
        params = PowerModelParams()
        # "the TCC data cache consumes 1.5 * 10 = 15% of the total power"
        assert params.tcc_dcache_fraction == pytest.approx(0.15)
        assert params.active_during_stall == pytest.approx(0.30)

    def test_custom_leakage(self):
        model = PowerModel.derive(PowerModelParams(leakage_fraction=0.3))
        assert model.gated == pytest.approx(0.3)
        assert model.commit == pytest.approx(0.3 + 0.7 * 0.30)

    def test_table1_rows(self):
        rows = PowerModel.derive().table1_rows()
        assert rows == [
            ("Run", 1.0),
            ("Cache Miss", 0.32),
            ("Transaction Commit", 0.44),
            ("Clock Gated", 0.20),
        ]

    def test_params_validation(self):
        with pytest.raises(ConfigError):
            PowerModelParams(leakage_fraction=1.5)
        with pytest.raises(ConfigError):
            PowerModelParams(tcc_dcache_factor=0.9)


class TestPowerModel:
    def test_power_of_each_state(self):
        model = PowerModel.derive()
        assert model.power_of(ProcState.RUN) == 1.0
        assert model.power_of(ProcState.MISS) == pytest.approx(0.32)
        assert model.power_of(ProcState.COMMIT) == pytest.approx(0.44)
        assert model.power_of(ProcState.GATED) == pytest.approx(0.20)

    def test_ordering_enforced(self):
        with pytest.raises(ConfigError):
            PowerModel(run=1.0, miss=0.5, commit=0.4, gated=0.2)
        with pytest.raises(ConfigError):
            PowerModel(run=1.0, miss=0.3, commit=0.4, gated=0.35)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            PowerModel(run=1.0, miss=-0.1, commit=0.4, gated=-0.2)


class TestLowPowerSets:
    def test_gated_set(self):
        assert LOW_POWER_STATES_GATED == {
            ProcState.MISS,
            ProcState.COMMIT,
            ProcState.GATED,
        }

    def test_ungated_set(self):
        assert LOW_POWER_STATES_UNGATED == {ProcState.MISS, ProcState.COMMIT}
        assert ProcState.GATED not in LOW_POWER_STATES_UNGATED
