"""Machine reset-not-rebuild: bit-identical warm state across a pack.

The pack warm path (PR 10) rests on one contract: a machine that has
been ``reset()`` produces numbers byte-identical to a freshly
constructed one.  These tests pin that contract at every level — the
raw ``Machine.reset`` parity, the :class:`RunReuse` cache policy, the
``REPRO_NO_RESET`` escape hatch, and the end-to-end store-digest
identity of reset-reuse ON vs OFF (mirroring the packs ON/OFF tests).
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError, WorkloadError
from repro.exec.executor import Executor
from repro.exec.jobs import (
    PackStats,
    RunJob,
    execute_pack,
    reset_enabled_from_env,
)
from repro.exec.serialize import result_to_dict
from repro.exec.store import ResultStore
from repro.harness.runner import RunReuse, run_workload, workload
from repro.htm.machine import Machine
from repro.sim.stats import StatsRegistry
from repro.workloads.registry import build_workload, workload_seed_invariant


def config_for(seed: int, *, procs: int = 2, gated: bool = True) -> SystemConfig:
    return SystemConfig(num_procs=procs, seed=seed).with_gating(gated, w0=8)


def fresh_run(name: str, seed: int, *, gated: bool = True):
    return run_workload(
        workload(name, scale="tiny", seed=seed), config_for(seed, gated=gated)
    )


def fingerprint(result) -> dict:
    """Everything observable from one run, as comparable plain data."""
    m = result.machine_result
    return {
        "counters": dict(result.counters),
        "end_cycle": m.end_cycle,
        "window": (m.parallel_start, m.parallel_end),
        "memory": dict(m.memory_snapshot),
        "energy_total": result.energy.total,
        "energy_by_state": {
            s.name: v for s, v in result.energy.by_state.items()
        },
    }


class TestMachineResetParity:
    """reset() restores pristine state: rebuild and reset agree exactly."""

    @pytest.mark.parametrize("name", ["counter", "bank", "llist"])
    @pytest.mark.parametrize("gated", [True, False])
    def test_reset_matches_rebuild(self, name, gated):
        reuse = RunReuse()
        # Seed 3 warms the machine, seed 4 rides the reset path.
        run_workload(
            workload(name, scale="tiny", seed=3),
            config_for(3, gated=gated),
            reuse=reuse,
        )
        warm = run_workload(
            workload(name, scale="tiny", seed=4),
            config_for(4, gated=gated),
            reuse=reuse,
        )
        assert reuse.machine_resets == 1
        assert fingerprint(warm) == fingerprint(fresh_run(name, 4, gated=gated))

    def test_double_reset_matches_rebuild(self):
        """Reset to a new seed and back again — still pristine."""
        reuse = RunReuse()
        for seed in (5, 6, 5):
            warm = run_workload(
                workload("counter", scale="tiny", seed=seed),
                config_for(seed),
                reuse=reuse,
            )
        assert reuse.machine_resets == 2
        assert fingerprint(warm) == fingerprint(fresh_run("counter", 5))

    def test_reset_rejects_topology_change(self):
        inst2 = build_workload("counter", scale="tiny", num_threads=2, seed=1)
        inst4 = build_workload("counter", scale="tiny", num_threads=4, seed=1)
        machine = Machine(
            config_for(1), inst2.programs, initial_memory=inst2.initial_memory
        )
        with pytest.raises(ConfigError, match="topology"):
            machine.reset(
                config_for(1, procs=4),
                inst4.programs,
                initial_memory=inst4.initial_memory,
            )

    def test_reset_accepts_seed_change_only(self):
        inst = build_workload("counter", scale="tiny", num_threads=2, seed=1)
        machine = Machine(
            config_for(1), inst.programs, initial_memory=inst.initial_memory
        )
        machine.reset(
            config_for(9), inst.programs, initial_memory=inst.initial_memory
        )
        assert machine.config.seed == 9

    def test_reset_rejects_wrong_program_count(self):
        inst = build_workload("counter", scale="tiny", num_threads=2, seed=1)
        machine = Machine(
            config_for(1), inst.programs, initial_memory=inst.initial_memory
        )
        with pytest.raises(ConfigError):
            machine.reset(config_for(1), inst.programs[:1])


class TestStatsRegistryReset:
    def test_reset_zeroes_but_keeps_handles(self):
        stats = StatsRegistry()
        c = stats.counter("tx.commits")
        h = stats.histogram("tx.latency")
        c.add(7)
        h.record(3)
        stats.reset()
        assert stats.counter("tx.commits") is c
        assert stats.histogram("tx.latency") is h
        assert stats.counters() == {}
        assert h.count == 0

    def test_counters_after_reset_match_fresh(self):
        stats = StatsRegistry()
        stats.counter("b.two")
        stats.counter("a.one")
        stats.reset()
        stats.counter("a.one").add(2)
        stats.counter("b.two").add(1)
        fresh = StatsRegistry()
        fresh.counter("b.two")
        fresh.counter("a.one")
        fresh.counter("a.one").add(2)
        fresh.counter("b.two").add(1)
        assert stats.counters() == fresh.counters()
        assert list(stats.counters()) == list(fresh.counters())  # sorted

    def test_order_cache_tracks_new_registrations(self):
        stats = StatsRegistry()
        stats.counter("m.mid").add(1)
        assert list(stats.counters()) == ["m.mid"]
        stats.counter("a.early").add(1)  # registers after first pass
        assert list(stats.counters()) == ["a.early", "m.mid"]


class TestRunReuse:
    def test_prep_cache_hits_only_seed_invariant_workloads(self):
        assert workload_seed_invariant("counter")
        assert workload_seed_invariant("array_walk")
        assert not workload_seed_invariant("bank")
        assert not workload_seed_invariant("kmeans")
        with pytest.raises(WorkloadError):
            workload_seed_invariant("no-such-workload")

    def test_prep_cache_restamps_seed(self):
        reuse = RunReuse()
        for seed in (1, 2):
            result = run_workload(
                workload("counter", scale="tiny", seed=seed),
                config_for(seed),
                reuse=reuse,
            )
            assert result.config.seed == seed
        assert reuse.prep_hits == 1

    def test_seed_dependent_workload_never_prep_cached(self):
        reuse = RunReuse()
        for seed in (1, 2):
            run_workload(
                workload("bank", scale="tiny", seed=seed),
                config_for(seed),
                reuse=reuse,
            )
        assert reuse.prep_hits == 0
        assert reuse.machine_resets == 1  # machine reuse is independent

    def test_discard_machine_forces_rebuild(self):
        reuse = RunReuse()
        run_workload(
            workload("counter", scale="tiny", seed=1),
            config_for(1),
            reuse=reuse,
        )
        reuse.discard_machine()
        run_workload(
            workload("counter", scale="tiny", seed=2),
            config_for(2),
            reuse=reuse,
        )
        assert reuse.machine_resets == 0

    def test_different_topology_is_not_reset_reused(self):
        reuse = RunReuse()
        run_workload(
            workload("counter", scale="tiny", seed=1),
            config_for(1),
            reuse=reuse,
        )
        run_workload(
            workload("counter", scale="tiny", seed=1),
            config_for(1, gated=False),
            reuse=reuse,
        )
        assert reuse.machine_resets == 0


class TestResetEnvSwitch:
    @pytest.mark.parametrize(
        "value,enabled",
        [("", True), ("0", True), ("false", True), ("no", True),
         ("1", False), ("yes", False), ("true", False)],
    )
    def test_values(self, monkeypatch, value, enabled):
        monkeypatch.setenv("REPRO_NO_RESET", value)
        assert reset_enabled_from_env() is enabled

    def test_unset_means_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_RESET", raising=False)
        assert reset_enabled_from_env() is True


class TestPackResetIdentity:
    """End-to-end: reset-reuse ON and OFF land byte-identical stores."""

    def seed_family(self, count: int = 4) -> list[RunJob]:
        return [
            RunJob(
                workload("counter", scale="tiny", seed=seed),
                config_for(seed),
            )
            for seed in range(1, count + 1)
        ]

    def test_pack_stats_count_warm_members(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_RESET", raising=False)
        outcomes, stats = execute_pack(self.seed_family())
        assert all(o.error is None for o in outcomes)
        assert stats == PackStats(reset_reuses=3, shared_prep_hits=3)

    def test_no_reset_env_disables_reuse(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_RESET", "1")
        outcomes, stats = execute_pack(self.seed_family())
        assert all(o.error is None for o in outcomes)
        assert stats == PackStats(reset_reuses=0, shared_prep_hits=0)

    def test_reset_on_off_results_bit_identical(self, monkeypatch):
        jobs = self.seed_family()
        monkeypatch.delenv("REPRO_NO_RESET", raising=False)
        on, _ = execute_pack(jobs)
        monkeypatch.setenv("REPRO_NO_RESET", "1")
        off, _ = execute_pack(jobs)
        assert [result_to_dict(o.result) for o in on] == [
            result_to_dict(o.result) for o in off
        ]

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_reset_on_off_stores_identical(self, tmp_path, backend, monkeypatch):
        jobs = self.seed_family()

        def normalized(directory):
            store = ResultStore(directory, backend=backend)
            records = {
                digest: result_to_dict(store.get(digest))
                for digest, _label in store.labels()
            }
            store.close()
            return records

        monkeypatch.delenv("REPRO_NO_RESET", raising=False)
        Executor(jobs=2, packs=True,
                 store=ResultStore(tmp_path / "on", backend=backend)).run(jobs)
        monkeypatch.setenv("REPRO_NO_RESET", "1")
        Executor(jobs=2, packs=True,
                 store=ResultStore(tmp_path / "off", backend=backend)).run(jobs)
        on, off = normalized(tmp_path / "on"), normalized(tmp_path / "off")
        assert sorted(on) == sorted(off)
        assert on == off
