"""Harness: runner, comparison, sweeps, experiments and reporting."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import HarnessError, ProtocolError
from repro.harness.compare import compare_gating
from repro.harness.experiments import EvaluationSuite
from repro.harness.reporting import format_matrix, format_table
from repro.harness.runner import RunResult, WorkloadSpec, run_workload, workload
from repro.harness.sweep import proc_scaling, w0_sensitivity
from repro.harness.validation import check_serializability
from repro.htm.machine import CommittedTx, MachineResult
from repro.power.report import format_energy_report
from repro.sim.timeline import StateTimeline
from repro.power.states import ProcState
from repro.sim.stats import StatsRegistry


class TestWorkloadSpec:
    def test_workload_helper(self):
        spec = workload("intruder", scale="tiny", seed=3, flows=6)
        assert spec.name == "intruder"
        assert spec.overrides == (("flows", 6),)
        inst = spec.build(2)
        assert inst.params["flows"] == 6

    def test_spec_builds_for_config_procs(self):
        result = run_workload(
            workload("counter", scale="tiny"), SystemConfig(num_procs=2, seed=1)
        )
        assert result.config.num_procs == 2

    def test_string_source(self):
        result = run_workload("counter", SystemConfig(num_procs=2, seed=1))
        assert result.workload == "counter"

    def test_instance_thread_mismatch(self):
        inst = workload("counter", scale="tiny").build(4)
        with pytest.raises(HarnessError, match="threads"):
            run_workload(inst, SystemConfig(num_procs=2))

    def test_bad_source_type(self):
        with pytest.raises(HarnessError):
            run_workload(1234, SystemConfig())  # type: ignore[arg-type]


class TestRunResult:
    @pytest.fixture(scope="class")
    def result(self) -> RunResult:
        return run_workload(
            workload("counter", scale="tiny", seed=1),
            SystemConfig(num_procs=4, seed=1),
        )

    def test_fields(self, result):
        assert result.workload == "counter"
        assert result.parallel_time > 0
        assert result.end_cycle >= result.parallel_time
        assert result.commits == 40  # 4 threads x 10 tiny increments
        assert 0.0 <= result.abort_rate < 1.0
        assert result.energy.total > 0

    def test_summary_text(self, result):
        text = result.summary()
        assert "counter" in text
        assert "gated" in text


class TestCompareGating:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_gating(
            workload("counter", scale="tiny", seed=5),
            SystemConfig(num_procs=4, seed=5),
        )

    def test_metrics_consistent(self, comparison):
        assert comparison.n1 == comparison.ungated.parallel_time
        assert comparison.n2 == comparison.gated.parallel_time
        assert comparison.speedup == pytest.approx(comparison.n1 / comparison.n2)
        expected_power = comparison.energy_reduction * (
            comparison.n2 / comparison.n1
        )
        assert comparison.power_reduction == pytest.approx(expected_power)

    def test_modes_actually_differ(self, comparison):
        assert not comparison.ungated.config.gating.enabled
        assert comparison.gated.config.gating.enabled
        assert comparison.gated.counters.get("gating.gated", 0) > 0
        assert comparison.ungated.counters.get("gating.gated", 0) == 0

    def test_energy_report_renders(self, comparison):
        text = format_energy_report(comparison.energy_report())
        assert "with clock gating" in text
        assert "Eq. 6" in text

    def test_summary(self, comparison):
        assert "counter x4" in comparison.summary()


class TestSweeps:
    def test_w0_sensitivity_structure(self):
        curves = w0_sensitivity(
            workload("counter", scale="tiny", seed=2),
            SystemConfig(num_procs=2, seed=2),
            w0_values=(4, 16),
        )
        assert set(curves) == {4, 16}
        for point in curves.values():
            assert set(point) >= {"speedup", "energy_reduction", "power_reduction"}
            assert point["n1"] > 0

    def test_proc_scaling(self):
        results = proc_scaling(
            workload("counter", scale="tiny", seed=2),
            SystemConfig(num_procs=2, seed=2),
            proc_counts=(1, 2),
        )
        assert set(results) == {1, 2}
        assert results[1].config.num_procs == 1


class TestEvaluationSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return EvaluationSuite(
            scale="tiny", seed=9, procs=(2, 4), apps=("counter", "intruder")
        )

    def test_comparison_cached(self, suite):
        first = suite.comparison("counter", 2)
        second = suite.comparison("counter", 2)
        assert first is second

    def test_fig4_rows(self, suite):
        rows = suite.fig4_rows()
        assert len(rows) == 4  # 2 apps x 2 proc counts
        for app, procs, n1, n2, speedup in rows:
            assert speedup == pytest.approx(n1 / n2)

    def test_fig5_rows(self, suite):
        for app, procs, eug, eg, reduction in suite.fig5_rows():
            assert reduction == pytest.approx(eug / eg)

    def test_fig6_rows(self, suite):
        rows = suite.fig6_rows()
        assert all(len(row) == 5 for row in rows)

    def test_fig7_matrix(self, suite):
        matrix = suite.fig7_matrix(w0_values=(8, 16))
        assert set(matrix) == {"counter", "intruder"}
        assert set(matrix["counter"]) == {2, 4}
        assert set(matrix["counter"][2]) == {8, 16}

    def test_fig3_static(self):
        curves = EvaluationSuite.fig3_curves()
        assert 64 in curves
        granularities = [g for g, _ in curves[64]]
        assert granularities[0] == 64 and granularities[-1] == 1

    def test_tables(self, suite):
        assert ("Run", 1.0) in suite.table1_rows()
        assert dict(suite.table2_rows(16))["CPU"].startswith("16")

    def test_headline(self, suite):
        headline = suite.headline()
        assert headline["points"] == 4.0
        assert headline["average_energy_reduction_factor"] > 0
        # percentage mapping consistency
        f = headline["average_energy_reduction_factor"]
        assert headline["average_energy_reduction_pct"] == pytest.approx(
            (1 - 1 / f) * 100
        )


class TestReporting:
    def test_format_table(self):
        text = format_table(
            ["app", "value"], [["genome", 1.2345], ["yada", 10]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "app" in lines[1]
        assert "1.234" in text and "10" in text

    def test_format_matrix(self):
        text = format_matrix(
            ["r1"], [1, 2], {"r1": {1: 0.5, 2: 0.25}}, corner="W0"
        )
        assert "W0" in text
        assert "0.500" in text

    def test_matrix_missing_cell(self):
        text = format_matrix(["r"], [1], {})
        assert "-" in text


class TestSerializabilityChecker:
    """The checker itself must catch seeded violations."""

    @staticmethod
    def make_result(commits, snapshot):
        timelines = [StateTimeline(ProcState.RUN)]
        timelines[0].finalize(10)
        return MachineResult(
            config=SystemConfig(num_procs=1),
            end_cycle=10,
            parallel_start=0,
            parallel_end=10,
            timelines=timelines,
            stats=StatsRegistry(),
            commit_log=commits,
            memory_snapshot=snapshot,
        )

    def test_accepts_consistent_history(self):
        commits = [
            CommittedTx(1, 0, "a", 5, reads=((8, 0),), writes=((8, 1),)),
            CommittedTx(2, 1, "a", 6, reads=((8, 1),), writes=((8, 2),)),
        ]
        result = self.make_result(commits, {8: 2})
        check_serializability({}, result, [])

    def test_detects_stale_read(self):
        commits = [
            CommittedTx(1, 0, "a", 5, reads=(), writes=((8, 1),)),
            CommittedTx(2, 1, "a", 6, reads=((8, 0),), writes=()),  # stale!
        ]
        result = self.make_result(commits, {8: 1})
        with pytest.raises(ProtocolError, match="serializability violation"):
            check_serializability({}, result, [])

    def test_detects_final_state_divergence(self):
        commits = [CommittedTx(1, 0, "a", 5, reads=(), writes=((8, 1),))]
        result = self.make_result(commits, {8: 999})
        with pytest.raises(ProtocolError, match="diverges"):
            check_serializability({}, result, [])

    def test_detects_duplicate_tids(self):
        commits = [
            CommittedTx(1, 0, "a", 5, reads=(), writes=()),
            CommittedTx(1, 1, "a", 6, reads=(), writes=()),
        ]
        result = self.make_result(commits, {})
        with pytest.raises(ProtocolError, match="duplicate"):
            check_serializability({}, result, [])

    def test_initial_image_respected(self):
        commits = [CommittedTx(1, 0, "a", 5, reads=((8, 42),), writes=())]
        result = self.make_result(commits, {8: 42})
        check_serializability({8: 42}, result, [])

    def test_nontx_writes_interleaved(self):
        commits = [CommittedTx(5, 0, "a", 100, reads=((8, 7),), writes=())]
        result = self.make_result(commits, {8: 7})
        # non-tx write of 7 at t=50 precedes the commit at t=100
        check_serializability({}, result, [(50, 8, 7, -1)])
