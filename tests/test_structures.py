"""Transactional data structures, tested functionally (no simulator).

The generator methods are executed against a plain dict memory by
``run_functional`` — this isolates data-structure logic from HTM
timing, and hypothesis drives them against Python-native references.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.htm.ops import Load, Store
from repro.workloads.base import MemoryLayout
from repro.workloads.structures.array import TArray
from repro.workloads.structures.hashtable import THashTable
from repro.workloads.structures.linkedlist import TNodePool, TSortedList
from repro.workloads.structures.queue import TQueue

from .helpers import collect_ops, run_functional


def fresh():
    return MemoryLayout()


class TestTArray:
    def test_addressing_and_stride(self):
        layout = fresh()
        arr = TArray(layout, 4, stride_words=8, line_aligned=True)
        assert arr.addr(0) % 64 == 0
        assert arr.addr(1) - arr.addr(0) == 64  # one line apart
        assert arr.addr(2, word=3) == arr.addr(2) + 24

    def test_bounds(self):
        arr = TArray(fresh(), 4)
        with pytest.raises(WorkloadError):
            arr.addr(4)
        with pytest.raises(WorkloadError):
            arr.addr(-1)

    def test_get_put_add(self):
        layout = fresh()
        arr = TArray(layout, 3)
        memory: dict[int, int] = {}
        run_functional(arr.put(1, 10), memory)
        assert run_functional(arr.get(1), memory) == 10
        assert run_functional(arr.add(1, 5), memory) == 15
        assert arr.read_final(memory, 1) == 15

    def test_initialize(self):
        layout = fresh()
        arr = TArray(layout, 3)
        arr.initialize(layout, [7, 8, 9])
        assert layout.peek(arr.addr(2)) == 9


class TestTHashTable:
    def test_insert_lookup(self):
        table = THashTable(fresh(), 16)
        memory: dict[int, int] = {}
        assert run_functional(table.insert(5, 50), memory) is True
        assert run_functional(table.insert(5, 99), memory) is False  # present
        assert run_functional(table.lookup(5), memory) == 50
        assert run_functional(table.lookup(6), memory) is None

    def test_update_flag(self):
        table = THashTable(fresh(), 16)
        memory: dict[int, int] = {}
        run_functional(table.insert(5, 50), memory)
        run_functional(table.insert(5, 99, update=True), memory)
        assert run_functional(table.lookup(5), memory) == 99

    def test_increment(self):
        table = THashTable(fresh(), 16)
        memory: dict[int, int] = {}
        assert run_functional(table.increment(7), memory) == 1
        assert run_functional(table.increment(7), memory) == 2
        assert run_functional(table.increment(7, 5), memory) == 7

    def test_key_zero_reserved(self):
        table = THashTable(fresh(), 16)
        with pytest.raises(WorkloadError):
            run_functional(table.insert(0, 1), {})

    def test_full_table_raises(self):
        table = THashTable(fresh(), 4)
        memory: dict[int, int] = {}
        for key in (1, 2, 3, 4):
            run_functional(table.insert(key, key), memory)
        with pytest.raises(WorkloadError, match="full"):
            run_functional(table.insert(5, 5), memory)

    def test_initialize_matches_transactional_inserts(self):
        layout = fresh()
        table = THashTable(layout, 32)
        items = {k: k * 10 for k in (3, 9, 17, 40, 77)}
        table.initialize(layout, items)
        # the image must decode back, and probing must find every key
        assert table.final_items(layout.image) == items
        for key, value in items.items():
            assert run_functional(table.lookup(key), dict(layout.image)) == value

    @settings(max_examples=40)
    @given(st.dictionaries(st.integers(1, 1_000_000), st.integers(0, 1000),
                           max_size=20))
    def test_matches_dict_reference(self, items):
        table = THashTable(fresh(), 64)
        memory: dict[int, int] = {}
        for key, value in items.items():
            run_functional(table.insert(key, value), memory)
        assert table.final_items(memory) == items

    def test_probing_wraps_around(self):
        """Keys colliding near the end of the table wrap to slot 0."""
        table = THashTable(fresh(), 8)
        memory: dict[int, int] = {}
        # Find keys that all hash to the last slot.
        from repro.workloads.base import mix64

        colliders = [k for k in range(1, 4000) if mix64(k) % 8 == 7][:3]
        assert len(colliders) == 3
        for key in colliders:
            run_functional(table.insert(key, key), memory)
        assert table.final_items(memory) == {k: k for k in colliders}


class TestTQueue:
    def test_fifo_order(self):
        layout = fresh()
        queue = TQueue(layout, capacity=8)
        queue.initialize(layout, [])
        memory = dict(layout.image)
        for v in (10, 20, 30):
            assert run_functional(queue.push(v), memory) is True
        assert run_functional(queue.pop(), memory) == 10
        assert run_functional(queue.pop(), memory) == 20
        assert run_functional(queue.pop(), memory) == 30
        assert run_functional(queue.pop(), memory) is None

    def test_capacity_limit(self):
        layout = fresh()
        queue = TQueue(layout, capacity=2)
        queue.initialize(layout, [])
        memory = dict(layout.image)
        assert run_functional(queue.push(1), memory)
        assert run_functional(queue.push(2), memory)
        assert run_functional(queue.push(3), memory) is False

    def test_wraparound(self):
        layout = fresh()
        queue = TQueue(layout, capacity=2)
        queue.initialize(layout, [])
        memory = dict(layout.image)
        for round_ in range(5):
            run_functional(queue.push(round_), memory)
            assert run_functional(queue.pop(), memory) == round_

    def test_prefill(self):
        layout = fresh()
        queue = TQueue(layout, capacity=4)
        queue.initialize(layout, [5, 6])
        memory = dict(layout.image)
        assert queue.final_size(memory) == 2
        assert run_functional(queue.pop(), memory) == 5

    def test_prefill_overflow_rejected(self):
        layout = fresh()
        queue = TQueue(layout, capacity=2)
        with pytest.raises(WorkloadError):
            queue.initialize(layout, [1, 2, 3])

    def test_head_tail_on_distinct_lines(self):
        layout = fresh()
        queue = TQueue(layout, capacity=4)
        assert queue.head_addr // 64 != queue.tail_addr // 64

    @settings(max_examples=40)
    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=60))
    def test_matches_deque_reference(self, ops):
        from collections import deque

        layout = fresh()
        queue = TQueue(layout, capacity=16)
        queue.initialize(layout, [])
        memory = dict(layout.image)
        ref: deque[int] = deque()
        counter = 0
        for op in ops:
            if op == "push":
                counter += 1
                ok = run_functional(queue.push(counter), memory)
                if len(ref) < 16:
                    assert ok
                    ref.append(counter)
                else:
                    assert not ok
            else:
                got = run_functional(queue.pop(), memory)
                expected = ref.popleft() if ref else None
                assert got == expected


class TestSortedList:
    def build(self, capacity=32):
        layout = fresh()
        pool = TNodePool(layout, capacity)
        lst = TSortedList(layout, pool)
        pool.initialize(layout)
        lst.initialize(layout)
        return lst, dict(layout.image)

    def test_sorted_insertion(self):
        lst, memory = self.build()
        for key in (30, 10, 20, 25, 5):
            run_functional(lst.insert(key, key), memory)
        assert lst.final_keys(memory) == [5, 10, 20, 25, 30]

    def test_duplicates_allowed(self):
        lst, memory = self.build()
        for key in (7, 7, 7):
            run_functional(lst.insert(key, 0), memory)
        assert lst.final_keys(memory) == [7, 7, 7]

    def test_contains(self):
        lst, memory = self.build()
        run_functional(lst.insert(10, 1), memory)
        run_functional(lst.insert(30, 3), memory)
        assert run_functional(lst.contains(10), memory) is True
        assert run_functional(lst.contains(20), memory) is False
        assert run_functional(lst.contains(31), memory) is False

    def test_pool_exhaustion(self):
        layout = fresh()
        pool = TNodePool(layout, 2)
        lst = TSortedList(layout, pool)
        pool.initialize(layout)
        lst.initialize(layout)
        memory = dict(layout.image)
        run_functional(lst.insert(1, 0), memory)
        run_functional(lst.insert(2, 0), memory)
        with pytest.raises(WorkloadError, match="exhausted"):
            run_functional(lst.insert(3, 0), memory)

    @settings(max_examples=40)
    @given(st.lists(st.integers(1, 100), max_size=25))
    def test_matches_sorted_reference(self, keys):
        lst, memory = self.build(capacity=max(1, len(keys)))
        for key in keys:
            run_functional(lst.insert(key, key), memory)
        assert lst.final_keys(memory) == sorted(keys)

    def test_traversal_reads_prefix(self):
        """Inserting near the tail reads every earlier node (the large
        read-set that makes lists an HTM pathology)."""
        lst, memory = self.build()
        for key in (1, 2, 3, 4):
            run_functional(lst.insert(key, key), memory)
        ops = collect_ops(lst.insert(5, 5), dict(memory))
        loads = [op for op in ops if isinstance(op, Load)]
        assert len(loads) >= 8  # head + 4 nodes x (key, next)


class TestMemoryLayout:
    def test_alloc_is_word_aligned_and_disjoint(self):
        layout = fresh()
        a = layout.alloc_words(3)
        b = layout.alloc_words(5)
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 3 * 8

    def test_line_alignment(self):
        layout = fresh()
        layout.alloc_words(1)
        aligned = layout.alloc_words(1, line_aligned=True)
        assert aligned % 64 == 0

    def test_alloc_lines(self):
        layout = fresh()
        base = layout.alloc_lines(2)
        assert base % 64 == 0
        next_base = layout.alloc_words(1, line_aligned=True)
        assert next_base - base == 128

    def test_poke_alignment(self):
        layout = fresh()
        with pytest.raises(WorkloadError):
            layout.poke(3, 1)

    def test_rejects_empty_alloc(self):
        with pytest.raises(WorkloadError):
            fresh().alloc_words(0)
