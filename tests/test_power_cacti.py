"""Mini-CACTI model (Fig. 3) contracts and calibration anchors."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.power.cacti import (
    CactiCacheModel,
    FIG3_CACHE_SIZES_KB,
    FIG3_GRANULARITIES,
    tcc_cache_power_curve,
    tcc_total_power_factor,
)


class TestCalibration:
    def test_paper_anchor_64kb_2byte(self):
        """'For a 64KB cache with word level (2B) state tracking the
        power increase is limited to 5%.'"""
        model = CactiCacheModel()
        assert model.relative_power(64, 2) == pytest.approx(105.0, abs=0.01)

    def test_line_granularity_is_nearly_free(self):
        model = CactiCacheModel()
        assert model.relative_power(64, 64) < 101.0

    def test_byte_granularity_is_considerable(self):
        model = CactiCacheModel()
        assert model.relative_power(64, 1) > 108.0

    def test_total_tcc_factor_is_about_1_5(self):
        """'the power of the entire data cache that supports TCC is,
        conservatively, 1.5 times that of the normal data cache'"""
        assert tcc_total_power_factor() == pytest.approx(1.5, abs=0.06)


class TestShape:
    def test_monotone_in_granularity(self):
        model = CactiCacheModel()
        for size in FIG3_CACHE_SIZES_KB:
            values = [model.relative_power(size, g) for g in FIG3_GRANULARITIES]
            # FIG3_GRANULARITIES is coarse -> fine, so power must rise
            assert values == sorted(values)

    def test_all_above_baseline(self):
        model = CactiCacheModel()
        for size in FIG3_CACHE_SIZES_KB:
            for g in FIG3_GRANULARITIES:
                assert model.relative_power(size, g) >= 100.0

    def test_curve_format(self):
        curve = tcc_cache_power_curve(64)
        assert [g for g, _ in curve] == list(FIG3_GRANULARITIES)
        assert all(isinstance(v, float) for _, v in curve)

    @given(st.sampled_from([16, 32, 64, 128, 256]), st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    def test_bounded_overhead(self, size_kb, granularity):
        model = CactiCacheModel()
        value = model.relative_power(size_kb, granularity)
        assert 100.0 <= value <= 200.0


class TestGeometry:
    def test_rw_bits(self):
        model = CactiCacheModel()
        assert model.rw_bits(64) == 2       # one R + one W for the line
        assert model.rw_bits(2) == 64       # word-level tracking
        assert model.rw_bits(1) == 128

    def test_rw_bits_bounds(self):
        model = CactiCacheModel()
        with pytest.raises(ConfigError):
            model.rw_bits(0)
        with pytest.raises(ConfigError):
            model.rw_bits(128)

    def test_tag_bits_shrink_with_size(self):
        model = CactiCacheModel()
        assert model.tag_bits(16) > model.tag_bits(128)

    def test_num_sets(self):
        model = CactiCacheModel()
        assert model.num_sets(64) == 512  # Table II geometry

    def test_fifo_contribution_scales_with_depth(self):
        small = tcc_total_power_factor(fifo_depth=256)
        large = tcc_total_power_factor(fifo_depth=2048)
        assert large > small
