"""repro.obs: spans, run manifests, metrics, and the obs CLI."""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro import obs
from repro.config import SystemConfig
from repro.errors import ReproError
from repro.exec.executor import BatchExecutionError, Executor
from repro.exec.jobs import RunJob
from repro.exec.store import ResultStore
from repro.harness.runner import workload
from repro.obs import ObsRecorder, new_run_id
from repro.obs.manifest import percentile
from repro.obs.summary import (
    list_runs,
    load_events,
    load_manifest,
    resolve_run,
    summarize_runs,
    tail_events,
)

TINY = SystemConfig(num_procs=2, seed=1)

_OBS_ENV = ("REPRO_OBS", "REPRO_OBS_DIR", "REPRO_OBS_RUN")


@pytest.fixture(autouse=True)
def obs_isolation(monkeypatch):
    """Every test starts (and ends) with observability fully off."""
    for key in _OBS_ENV:
        monkeypatch.delenv(key, raising=False)
    obs.reset()
    yield
    obs.reset()
    for key in _OBS_ENV:
        os.environ.pop(key, None)


def tiny_job(name: str = "counter", *, gated: bool = True, w0: int = 8,
             seed: int = 1) -> RunJob:
    config = SystemConfig(num_procs=2, seed=seed).with_gating(gated, w0=w0)
    return RunJob(workload(name, scale="tiny", seed=seed), config)


def bad_job() -> RunJob:
    return RunJob(workload("no-such-workload", scale="tiny"), TINY)


# ----------------------------------------------------------------------
# recorder: spans, events, counters, manifests
# ----------------------------------------------------------------------
class TestRecorder:
    def test_run_ids_are_unique_and_sortable(self):
        ids = {new_run_id() for _ in range(5)}
        for run_id in ids:
            assert run_id.endswith(f"-p{os.getpid()}")

    def test_span_parent_child_integrity(self, tmp_path):
        rec = ObsRecorder(tmp_path / "obs")
        with rec.span("outer") as outer:
            rec.event("ping", x=1)
            with rec.span("inner") as inner:
                rec.event("pong")
        rec.close()

        records = list(load_events(tmp_path / "obs", rec.run_id))
        by_name = {r["name"]: r for r in records}
        assert set(by_name) == {"outer", "inner", "ping", "pong"}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == outer.id
        assert by_name["ping"]["parent"] == outer.id
        assert by_name["pong"]["parent"] == inner.id
        assert by_name["inner"]["kind"] == "span"
        assert by_name["inner"]["dur_s"] >= 0
        assert by_name["ping"]["kind"] == "event"
        assert by_name["ping"]["attrs"] == {"x": 1}
        # ids are unique across the run
        ids = [r["id"] for r in records if r["kind"] == "span"]
        assert len(ids) == len(set(ids))

    def test_span_error_status_propagates_exception(self, tmp_path):
        rec = ObsRecorder(tmp_path / "obs")
        with pytest.raises(ValueError):
            with rec.span("doomed"):
                raise ValueError("boom")
        rec.close()
        (record,) = list(load_events(tmp_path / "obs", rec.run_id))
        assert record["status"] == "error"

    def test_complete_span_honours_explicit_parent(self, tmp_path):
        rec = ObsRecorder(tmp_path / "obs")
        rec.complete_span("job", 0.25, parent="7-42", digest="d" * 64)
        rec.close()
        (record,) = list(load_events(tmp_path / "obs", rec.run_id))
        assert record["parent"] == "7-42"
        assert record["dur_s"] == 0.25
        assert record["attrs"]["digest"] == "d" * 64

    def test_counters_accumulate(self, tmp_path):
        rec = ObsRecorder(tmp_path / "obs")
        rec.count("store.hits")
        rec.count("store.hits", 2)
        rec.count("store.lock_wait_s", 0.5)
        assert rec.counters() == {"store.hits": 3, "store.lock_wait_s": 0.5}
        rec.close()
        manifest = load_manifest(tmp_path / "obs", rec.run_id)
        assert manifest["counters"]["store.hits"] == 3

    def test_manifest_shape_and_finished_flag(self, tmp_path):
        rec = ObsRecorder(tmp_path / "obs", argv=["repro", "x"])
        rec.note_suite("smoke", "a" * 64)
        rec.note_jobs(["d1", "d2"])
        rec.write_manifest()
        partial = load_manifest(tmp_path / "obs", rec.run_id)
        assert partial["finished"] is False
        rec.close()
        manifest = load_manifest(tmp_path / "obs", rec.run_id)
        assert manifest["kind"] == "run-manifest"
        assert manifest["finished"] is True
        assert manifest["argv"] == ["repro", "x"]
        assert manifest["suites"] == {"smoke": "a" * 64}
        assert manifest["jobs"] == {"count": 2, "digests": ["d1", "d2"]}
        assert manifest["metrics"]["job_latency_s"]["count"] == 0

    def test_close_is_idempotent(self, tmp_path):
        rec = ObsRecorder(tmp_path / "obs")
        rec.close()
        stamp = (tmp_path / "obs" / f"run-{rec.run_id}.manifest.json").stat()
        rec.close()
        after = (tmp_path / "obs" / f"run-{rec.run_id}.manifest.json").stat()
        assert stamp.st_mtime_ns == after.st_mtime_ns

    def test_attached_recorder_never_writes_the_manifest(self, tmp_path):
        owner = ObsRecorder(tmp_path / "obs")
        child = ObsRecorder(tmp_path / "obs", run_id=owner.run_id)
        assert owner.owner and not child.owner
        child.event("from-child")
        child.close()
        assert not owner.manifest_path.exists()
        owner.close()
        manifest = load_manifest(tmp_path / "obs", owner.run_id)
        # the child's slice is in the shared event log, not the manifest
        assert manifest["record_counts"]["events"] == 0
        names = [r["name"] for r in load_events(tmp_path / "obs",
                                                owner.run_id)]
        assert "from-child" in names

    def test_deleted_directory_is_not_resurrected(self, tmp_path):
        rec = ObsRecorder(tmp_path / "obs")
        rec.event("pre-delete")
        shutil.rmtree(tmp_path / "obs")
        rec.event("post-delete")
        rec.close()  # must neither raise nor recreate the directory
        assert not (tmp_path / "obs").exists()

    def test_percentile(self):
        assert percentile([], 50) is None
        assert percentile([3.0], 95) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0


# ----------------------------------------------------------------------
# read side: run resolution, tailing, torn lines
# ----------------------------------------------------------------------
class TestSummaryHelpers:
    def test_resolve_run_latest_exact_prefix_ambiguous(self, tmp_path):
        directory = tmp_path / "obs"
        directory.mkdir()
        for run in ("20260101-aaa", "20260102-bbb", "20260102-bcc"):
            (directory / f"run-{run}.jsonl").write_text("")
        assert list_runs(directory) == ["20260101-aaa", "20260102-bbb",
                                        "20260102-bcc"]
        assert resolve_run(directory, None) == "20260102-bcc"
        assert resolve_run(directory, "latest") == "20260102-bcc"
        assert resolve_run(directory, "20260101-aaa") == "20260101-aaa"
        assert resolve_run(directory, "20260101") == "20260101-aaa"
        with pytest.raises(ReproError, match="ambiguous"):
            resolve_run(directory, "20260102")
        with pytest.raises(ReproError, match="no run matching"):
            resolve_run(directory, "1999")
        with pytest.raises(ReproError, match="no observability runs"):
            resolve_run(tmp_path / "empty", None)

    def test_load_events_skips_torn_lines(self, tmp_path):
        rec = ObsRecorder(tmp_path / "obs")
        rec.event("good")
        rec.flush()
        with rec.path.open("a") as fh:
            fh.write('{"half": "a record, torn mid-wri\n')
        rec.event("after")
        rec.close()
        names = [r["name"] for r in load_events(tmp_path / "obs",
                                                rec.run_id)]
        assert names == ["good", "after"]

    def test_tail_events_limit(self, tmp_path):
        rec = ObsRecorder(tmp_path / "obs")
        for i in range(10):
            rec.event("tick", i=i)
        rec.close()
        tail = tail_events(tmp_path / "obs", rec.run_id, limit=3)
        assert [r["attrs"]["i"] for r in tail] == [7, 8, 9]

    def test_summarize_skips_manifestless_runs(self, tmp_path):
        directory = tmp_path / "obs"
        rec = ObsRecorder(directory)
        rec.close()
        (directory / "run-19990101-000-p1.jsonl").write_text("")
        summary = summarize_runs(directory)
        assert summary["kind"] == "obs-summary"
        assert summary["totals"]["runs"] == 1
        assert summary["skipped"] == ["19990101-000-p1"]


# ----------------------------------------------------------------------
# multi-process hammer: same-run appends never tear
# ----------------------------------------------------------------------
def _hammer_obs(directory: str, run_id: str, worker: int, n: int) -> None:
    """Child-process entry point: append *n* records to a shared run."""
    rec = ObsRecorder(directory, run_id=run_id, flush_every=4)
    for i in range(n):
        rec.event("hammer", worker=worker, i=i,
                  pad="x" * 200)  # long lines make torn writes loud
    rec.complete_span("hammer.span", 0.001, worker=worker)
    rec.close()


class TestMultiprocessAppends:
    def test_shared_run_log_has_no_torn_lines(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        owner = ObsRecorder(tmp_path / "obs")
        workers, per_worker = 4, 25
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_hammer_obs, str(tmp_path / "obs"),
                            owner.run_id, w, per_worker)
                for w in range(workers)
            ]
            for future in futures:
                future.result()
        owner.event("parent-alive")
        owner.close()

        # every raw line must parse — a torn append would not
        lines = owner.path.read_text().splitlines()
        records = [json.loads(line) for line in lines if line]
        assert len(records) == workers * (per_worker + 1) + 1
        events = [r for r in records if r["name"] == "hammer"]
        assert len(events) == workers * per_worker
        seen = {(r["attrs"]["worker"], r["attrs"]["i"]) for r in events}
        assert len(seen) == workers * per_worker
        assert {r["run"] for r in records} == {owner.run_id}


# ----------------------------------------------------------------------
# executor integration
# ----------------------------------------------------------------------
class TestExecutorObservability:
    def test_job_spans_counters_and_manifest_metrics(self, tmp_path):
        rec = obs.configure(tmp_path / "obs", export_env=False)
        exe = Executor(store=ResultStore(tmp_path / "store"))
        exe.run([tiny_job(), tiny_job(gated=False)])
        report = exe.last_report
        rec.close()

        manifest = load_manifest(tmp_path / "obs", rec.run_id)
        metrics = manifest["metrics"]
        assert metrics["batches"] == 1
        assert metrics["jobs_executed"] == report.executed == 2
        assert metrics["cache_hits"] == 0
        assert metrics["job_latency_s"]["count"] == 2
        assert metrics["job_latency_s"]["p95"] >= metrics["job_latency_s"]["p50"]
        assert manifest["record_counts"]["by_name"]["job"] == 2
        assert manifest["record_counts"]["by_name"]["batch"] == 1
        assert manifest["jobs"]["count"] == 2
        assert manifest["counters"]["store.puts"] == 2
        assert manifest["counters"]["store.misses"] == 2

        records = list(load_events(tmp_path / "obs", rec.run_id))
        batch = next(r for r in records if r["name"] == "batch")
        jobs = [r for r in records if r["name"] == "job"]
        assert all(j["parent"] == batch["id"] for j in jobs)
        assert batch["attrs"]["executed"] == 2
        for job_span in jobs:
            attrs = job_span["attrs"]
            assert attrs["cached"] is False
            assert attrs["worker_pid"] == os.getpid()
            # only the tx/gating namespaces ride along on the span
            assert attrs["counters"]
            assert all(name.startswith(("tx.", "gating."))
                       for name in attrs["counters"])

    def test_cache_hits_become_events_and_hit_rate(self, tmp_path):
        rec = obs.configure(tmp_path / "obs", export_env=False)
        jobs = [tiny_job(), tiny_job(gated=False)]
        Executor(store=ResultStore(tmp_path / "store")).run(jobs)
        exe = Executor(store=ResultStore(tmp_path / "store"))
        exe.run(jobs)
        report = exe.last_report
        rec.close()

        assert report.cache_hits == 2
        manifest = load_manifest(tmp_path / "obs", rec.run_id)
        assert manifest["metrics"]["cache_hits"] == 2
        assert manifest["metrics"]["hit_rate"] == 0.5
        assert manifest["record_counts"]["by_name"]["job.cache_hit"] == 2
        # sims/sec in the manifest is executed work over batch wall time
        wall = sum(b["wall_seconds"] for b in manifest["batches"])
        assert manifest["metrics"]["sims_per_second"] == pytest.approx(
            2 / wall
        )

    def test_failures_surface_with_traceback_and_digest(self, tmp_path):
        rec = obs.configure(tmp_path / "obs", export_env=False)
        good, bad = tiny_job(), bad_job()
        with pytest.raises(BatchExecutionError) as excinfo:
            Executor(store=ResultStore(tmp_path / "store")).run([good, bad])
        rec.close()

        (failure,) = excinfo.value.failures
        assert failure.digest == bad.digest
        assert failure.workload == "no-such-workload"
        assert "Traceback" in failure.traceback
        assert bad.digest[:12] in str(excinfo.value)

        manifest = load_manifest(tmp_path / "obs", rec.run_id)
        assert manifest["failures"]["by_workload"] == {"no-such-workload": 1}
        (detail,) = manifest["failures"]["detail"]
        assert detail["digest"] == bad.digest
        assert manifest["metrics"]["failures"] == 1
        assert manifest["batches"][0]["failed"] == 1
        event = next(r for r in load_events(tmp_path / "obs", rec.run_id)
                     if r["name"] == "job.failed")
        assert "Traceback" in event["attrs"]["traceback"]
        # the batch span closed with an error status
        batch = next(r for r in load_events(tmp_path / "obs", rec.run_id)
                     if r["name"] == "batch")
        assert batch["status"] == "error"

    def test_profile_rows_merge_into_manifest(self, tmp_path):
        rec = obs.configure(tmp_path / "obs", export_env=False)
        Executor(store=ResultStore(tmp_path / "s"), profile=True).run(
            [tiny_job()]
        )
        rec.close()
        manifest = load_manifest(tmp_path / "obs", rec.run_id)
        profile = manifest["profile"]
        assert profile["jobs"] == 1
        assert profile["top"]
        assert any("execute_job" in row["func"] for row in profile["top"])

    def test_disabled_recorder_records_nothing(self, tmp_path):
        exe = Executor(store=ResultStore(tmp_path / "store"))
        exe.run([tiny_job()])
        assert not obs.get_recorder().enabled
        assert obs.get_recorder().counters() == {}
        assert list(tmp_path.glob("**/run-*.jsonl")) == []

    def test_flush_batches_counter_aggregates_directory_flushes(
        self, tmp_path
    ):
        """Every executed job's dirN.flushes land in dir.flush_batches."""
        rec = obs.configure(tmp_path / "obs", export_env=False)
        exe = Executor(store=ResultStore(tmp_path / "store"))
        results = exe.run([tiny_job(), tiny_job(gated=False)])
        rec.close()

        expected = sum(
            value
            for result in results
            for name, value in result.counters.items()
            if name.startswith("dir") and name.endswith(".flushes")
        )
        assert expected > 0  # tiny counter runs really do commit-flush
        manifest = load_manifest(tmp_path / "obs", rec.run_id)
        assert manifest["counters"]["dir.flush_batches"] == expected

    def test_pack_spans_carry_replicate_attrs(self, tmp_path):
        """A pooled seed family lands one pack span per dispatch unit."""
        rec = obs.configure(tmp_path / "obs", export_env=False)
        family = [tiny_job(seed=seed) for seed in range(1, 5)]
        exe = Executor(
            jobs=2, store=ResultStore(tmp_path / "store"), packs=True
        )
        exe.run(family)
        rec.close()

        records = list(load_events(tmp_path / "obs", rec.run_id))
        packs = [r for r in records if r["name"] == "pack"]
        assert packs, "pooled seed family should dispatch as pack(s)"
        assert sum(p["attrs"]["replicates"] for p in packs) == len(family)
        for pack in packs:
            attrs = pack["attrs"]
            assert attrs["replicates"] >= 2
            assert attrs["workload"] == "counter"
            assert attrs["failed"] == 0
            assert attrs["worker_pid"] != os.getpid()  # ran in a worker
        # every member still gets its own job span
        jobs = [r for r in records if r["name"] == "job"]
        assert len(jobs) == len(family)

    def test_no_packs_run_has_no_pack_spans(self, tmp_path):
        rec = obs.configure(tmp_path / "obs", export_env=False)
        family = [tiny_job(seed=seed) for seed in range(1, 5)]
        Executor(
            jobs=2, store=ResultStore(tmp_path / "store"), packs=False
        ).run(family)
        rec.close()
        records = list(load_events(tmp_path / "obs", rec.run_id))
        assert [r for r in records if r["name"] == "pack"] == []
        assert len([r for r in records if r["name"] == "job"]) == len(family)


# ----------------------------------------------------------------------
# obs on/off byte identity
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_figure_artifacts_identical_with_obs_on(self, tmp_path):
        from repro.figures import FigureBuilder, FigureParams

        params = FigureParams(scale="tiny", seed=0, apps=("counter",),
                              procs=(2,), w0=2, w0_values=(2, 4))

        plain = FigureBuilder(store=tmp_path / "s-off",
                              out_dir=tmp_path / "f-off", params=params)
        plain.build()

        rec = obs.configure(tmp_path / "obs", export_env=False)
        observed = FigureBuilder(store=tmp_path / "s-on",
                                 out_dir=tmp_path / "f-on", params=params)
        observed.build()
        rec.close()

        off = sorted((tmp_path / "f-off").glob("*.json"))
        on = sorted((tmp_path / "f-on").glob("*.json"))
        assert [p.name for p in off] == [p.name for p in on]
        for a, b in zip(off, on):
            assert a.read_bytes() == b.read_bytes(), a.name

        # acceptance: the manifest's job-span count equals the planned
        # residual misses of the build (every simulation became a span)
        manifest = load_manifest(tmp_path / "obs", rec.run_id)
        assert manifest["record_counts"]["by_name"]["job"] == 3
        assert manifest["metrics"]["jobs_executed"] == 3
        assert manifest["record_counts"]["by_name"]["figure"] \
            == len(off)

    def test_store_digests_identical_with_obs_on(self, tmp_path):
        jobs = [tiny_job(), tiny_job(gated=False), tiny_job(w0=4)]
        Executor(store=ResultStore(tmp_path / "s-off")).run(jobs)
        rec = obs.configure(tmp_path / "obs", export_env=False)
        Executor(store=ResultStore(tmp_path / "s-on")).run(jobs)
        rec.close()
        off = ResultStore(tmp_path / "s-off")
        on = ResultStore(tmp_path / "s-on")
        assert sorted(d for d, _ in off.labels()) \
            == sorted(d for d, _ in on.labels())
        for digest, _label in off.labels():
            from repro.exec.serialize import result_to_dict

            assert result_to_dict(off.get(digest)) \
                == result_to_dict(on.get(digest))


# ----------------------------------------------------------------------
# CLI: --obs-dir, REPRO_OBS, obs list/show/summary/tail, exec-status
# ----------------------------------------------------------------------
class TestObsCli:
    def run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        out = capsys.readouterr()
        return code, out.out, out.err

    def _suite_run(self, capsys, tmp_path, *extra):
        return self.run(
            capsys, "suite", "run", "--suite", "smoke", "--scale", "tiny",
            "--cache-dir", str(tmp_path / "cache"),
            "--obs-dir", str(tmp_path / "obs"), "--jobs", "1", *extra,
        )

    def test_flag_mode_run_and_summary_roundtrip(self, capsys, tmp_path):
        code, _out, err = self._suite_run(capsys, tmp_path)
        assert code == 0
        assert "obs: run manifest" in err
        # flag mode cleans its env exports back up
        assert "REPRO_OBS" not in os.environ

        obs_dir = str(tmp_path / "obs")
        code, out, _err = self.run(capsys, "obs", "list",
                                   "--obs-dir", obs_dir, "--json")
        assert code == 0
        runs = json.loads(out)["runs"]
        assert len(runs) == 1

        # second, fully cached run in the same obs dir
        code, _out, _err = self._suite_run(capsys, tmp_path)
        assert code == 0

        code, out, _err = self.run(capsys, "obs", "summary",
                                   "--obs-dir", obs_dir, "--json")
        assert code == 0
        summary = json.loads(out)
        totals = summary["totals"]
        assert totals["runs"] == 2
        assert totals["jobs_executed"] > 0
        assert totals["cache_hits"] == totals["jobs_executed"]
        assert totals["hit_rate"] == 0.5
        # the summary reproduces the manifests it aggregated
        manifests = [load_manifest(obs_dir, run) for run in
                     list_runs(obs_dir)]
        assert totals["jobs_executed"] == sum(
            m["metrics"]["jobs_executed"] for m in manifests
        )
        wall = sum(m["metrics"]["wall_seconds"] for m in manifests)
        assert totals["sims_per_second"] == pytest.approx(
            totals["jobs_executed"] / wall
        )

        code, out, _err = self.run(capsys, "obs", "summary",
                                   "--obs-dir", obs_dir)
        assert code == 0
        assert "cache hit rate: 50.0%" in out

    def test_show_and_tail(self, capsys, tmp_path):
        assert self._suite_run(capsys, tmp_path)[0] == 0
        obs_dir = str(tmp_path / "obs")

        code, out, _err = self.run(capsys, "obs", "show",
                                   "--obs-dir", obs_dir, "--json")
        assert code == 0
        manifest = json.loads(out)
        assert manifest["kind"] == "run-manifest"
        assert manifest["finished"] is True
        assert manifest["argv"][:3] == ["repro", "suite", "run"]

        code, out, _err = self.run(capsys, "obs", "show",
                                   "--obs-dir", obs_dir)
        assert code == 0
        assert "throughput:" in out
        assert "store.puts" in out

        code, out, _err = self.run(capsys, "obs", "tail",
                                   "--obs-dir", obs_dir, "-n", "5")
        assert code == 0
        assert len(out.strip().splitlines()) == 5

        # run prefix resolution through the CLI
        run = list_runs(obs_dir)[0]
        code, out, _err = self.run(capsys, "obs", "show",
                                   "--obs-dir", obs_dir, run[:8], "--json")
        assert code == 0
        assert json.loads(out)["run"] == run

    def test_list_empty_directory(self, capsys, tmp_path):
        code, _out, err = self.run(capsys, "obs", "list",
                                   "--obs-dir", str(tmp_path / "none"))
        assert code == 1
        assert "no observability runs" in err
        code, out, _err = self.run(capsys, "obs", "list",
                                   "--obs-dir", str(tmp_path / "none"),
                                   "--json")
        assert code == 0
        assert json.loads(out)["runs"] == []

    def test_env_mode_records_and_preserves_env(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        code, _out, err = self.run(
            capsys, "figures", "build", "--only", "table1",
            "--scale", "tiny", "--apps", "counter", "--grid", "2",
            "--w0", "2", "--w0-values", "2", "4",
            "--cache-dir", str(tmp_path / "cache"),
            "--out-dir", str(tmp_path / "figs"),
        )
        assert code == 0
        assert "obs: run manifest" in err
        (run,) = list_runs(tmp_path / "obs")
        assert load_manifest(tmp_path / "obs", run)["finished"] is True
        # env mode leaves the environment for sibling invocations
        assert os.environ["REPRO_OBS"] == "1"

    def test_obs_command_reads_without_recording(self, capsys, tmp_path,
                                                 monkeypatch):
        assert self._suite_run(capsys, tmp_path)[0] == 0
        obs_dir = str(tmp_path / "obs")
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", obs_dir)
        before = list_runs(obs_dir)
        assert self.run(capsys, "obs", "list", "--json")[0] == 0
        assert list_runs(obs_dir) == before

    def test_failed_batch_prints_digests_and_manifests_failure(
        self, capsys, tmp_path, monkeypatch
    ):
        def boom(job):
            raise RuntimeError("injected failure")

        # jobs=1 executes inline, so the serial path sees the patch
        monkeypatch.setattr("repro.exec.executor.execute_job", boom)
        code, _out, err = self._suite_run(capsys, tmp_path)
        assert code == 1
        assert "FAILED" in err
        assert "injected failure" in err
        assert "Traceback" in err
        (run,) = list_runs(tmp_path / "obs")
        manifest = load_manifest(tmp_path / "obs", run)
        assert manifest["metrics"]["failures"] >= 1
        assert sum(manifest["failures"]["by_workload"].values()) >= 1
        (detail, *_rest) = manifest["failures"]["detail"]
        assert detail["error"] == "injected failure"

    def test_exec_status_json(self, capsys, tmp_path):
        assert self._suite_run(capsys, tmp_path)[0] == 0
        code, out, _err = self.run(
            capsys, "exec-status", "--cache-dir", str(tmp_path / "cache"),
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["backend"] == "jsonl"
        assert payload["entries"] > 0
        assert payload["skipped_records"] == 0
        assert sum(payload["by_workload"].values()) == payload["entries"]
