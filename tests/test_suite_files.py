"""User-defined ScenarioSuite JSON files: round-trip, loader, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import WorkloadError
from repro.scenarios import ScenarioSpec, ScenarioSuite, load_suite_file, suite
from repro.scenarios.builtin import get_suite


def sample_suite() -> ScenarioSuite:
    return suite(
        "my-grid",
        ScenarioSpec(workload="counter", scale="tiny", seed=4, threads=2),
        axes={"gating": (False, True), "w0": (4, 16)},
        description="hand-written test grid",
    )


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        original = sample_suite()
        loaded = ScenarioSuite.from_json(original.to_json())
        assert loaded == original
        assert [s.digest for s in loaded.expand()] == [
            s.digest for s in original.expand()
        ]

    def test_file_round_trip(self, tmp_path):
        original = sample_suite()
        path = tmp_path / "grid.json"
        path.write_text(original.to_json(indent=2))
        loaded = load_suite_file(path)
        assert loaded == original
        assert loaded.size == 4

    def test_builtin_suites_survive_the_file_format(self, tmp_path):
        for name in ("smoke", "paper-eval"):
            original = get_suite(name, scale="tiny")
            path = tmp_path / f"{name}.json"
            path.write_text(original.to_json())
            loaded = load_suite_file(path)
            assert [s.digest for s in loaded.expand()] == [
                s.digest for s in original.expand()
            ]


class TestLoader:
    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read suite file"):
            load_suite_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(WorkloadError, match="not valid JSON"):
            load_suite_file(path)

    def test_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(WorkloadError, match="JSON object"):
            load_suite_file(path)

    def test_unnamed_suite_takes_file_stem(self, tmp_path):
        data = sample_suite().to_dict()
        del data["name"]
        path = tmp_path / "stem-name.json"
        path.write_text(json.dumps(data))
        assert load_suite_file(path).name == "stem-name"

    def test_bad_axis_values_rejected(self, tmp_path):
        data = sample_suite().to_dict()
        data["axes"] = [["w0", "oops"]]
        path = tmp_path / "bad-axis.json"
        path.write_text(json.dumps(data))
        with pytest.raises(WorkloadError, match="must be a list"):
            load_suite_file(path)


class TestCli:
    def test_suite_run_from_file(self, capsys, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(sample_suite().to_json())
        assert main(["suite", "run", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "suite my-grid — 4 scenario(s)" in out
        assert "gated vs ungated pairs" in out

    def test_suite_describe_from_file(self, capsys, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(sample_suite().to_json())
        assert main(["suite", "describe", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "axis gating" in out
        assert "expands to 4 scenario(s)" in out

    def test_file_and_suite_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "suite", "run", "--suite", "smoke",
                "--file", str(tmp_path / "x.json"),
            ])

    def test_scale_override_applies_to_file_suite(self, capsys, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(sample_suite().to_json())
        assert main([
            "suite", "describe", "--file", str(path), "--scale", "small",
        ]) == 0
        assert "counter[small]" in capsys.readouterr().out

    def test_seed_zero_override_applies_to_file_suite(self, capsys, tmp_path):
        # the sample suite's base seed is 4; --seed 0 must reset it
        path = tmp_path / "mini.json"
        path.write_text(sample_suite().to_json())
        assert main([
            "suite", "describe", "--file", str(path), "--seed", "0", "--json",
        ]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert {spec["seed"] for spec in specs} == {0}

    def test_no_seed_keeps_file_suite_seed(self, capsys, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(sample_suite().to_json())
        assert main([
            "suite", "describe", "--file", str(path), "--json",
        ]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert {spec["seed"] for spec in specs} == {4}
