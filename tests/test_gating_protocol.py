"""Clock-gating protocol: Fig. 1 table semantics and the Section V FSM.

Scenario tests drive two/three-processor machines with deterministic
programs and assert on the gating trace; table-level tests exercise
:class:`~repro.gating.table.GatingEntry` directly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import GatingConfig, SystemConfig
from repro.gating.table import GatingEntry, GatingTable
from repro.htm.machine import Machine
from repro.htm.ops import Compute, Load, Store, TxOp
from repro.htm.program import ThreadProgram
from repro.power.states import ProcState
from repro.sim.trace import TraceRecorder

A = 0x1000
HOT = 0x2000


class TestGatingEntry:
    def test_bump_abort_resets_renew(self):
        entry = GatingEntry(0)
        entry.renew_count = 5
        entry.bump_abort(saturation=255)
        assert entry.abort_count == 1
        assert entry.renew_count == 0  # "reset whenever Abort count incremented"

    def test_abort_counter_saturates(self):
        """8-bit counter saturates at 255 (Section III)."""
        entry = GatingEntry(0)
        for _ in range(300):
            entry.bump_abort(saturation=255)
        assert entry.abort_count == 255

    def test_reset_on_commit(self):
        entry = GatingEntry(0)
        entry.bump_abort(255)
        entry.renew_count = 3
        entry.reset_on_commit()
        assert entry.abort_count == 0
        assert entry.renew_count == 0

    def test_cancel_timer_bumps_epoch(self):
        entry = GatingEntry(0)
        epoch = entry.epoch
        entry.cancel_timer()
        assert entry.epoch == epoch + 1

    def test_table_off_procs(self):
        table = GatingTable(4)
        table.entry(2).off = True
        assert table.off_procs() == [2]


def run_programs(program_fns, num_procs=None, w0=8, seed=0, trace=None, **cfg_kw):
    num_procs = num_procs or len(program_fns)
    config = SystemConfig(
        num_procs=num_procs,
        seed=seed,
        gating=GatingConfig(enabled=True, w0=w0),
        **cfg_kw,
    )
    programs = [ThreadProgram(fn, f"t{i}") for i, fn in enumerate(program_fns)]
    machine = Machine(config, programs, trace=trace)
    return machine, machine.run()


def contended_counter(n, site="inc", work=5):
    def program(ctx):
        def body(tx):
            value = yield Load(HOT)
            yield Compute(work)
            yield Store(HOT, value + 1)

        for _ in range(n):
            yield TxOp(body, site=site)

    return program


class TestGatingScenarios:
    def test_abort_gates_victim_and_wakes_it(self):
        trace = TraceRecorder(kinds=("gate", "tx"))
        _, result = run_programs(
            [contended_counter(10), contended_counter(10)], trace=trace
        )
        c = result.counters()
        assert c["gating.gated"] > 0
        assert c["gating.wakeups"] == c["gating.gated"]
        # every gate.off has a later gate.on for the same proc
        offs = trace.events("gate.off")
        ons = trace.events("gate.on")
        assert len(ons) >= len(offs) > 0

    def test_gated_time_appears_in_timeline(self):
        machine, result = run_programs(
            [contended_counter(10), contended_counter(10)]
        )
        gated_cycles = sum(
            tl.durations().get(ProcState.GATED, 0) for tl in result.timelines
        )
        assert gated_cycles > 0

    def test_no_gating_without_conflicts(self):
        def make(addr):
            def program(ctx):
                def body(tx):
                    value = yield Load(addr)
                    yield Store(addr, value + 1)

                for _ in range(5):
                    yield TxOp(body, site="private")

            return program

        _, result = run_programs([make(A), make(A + 0x1000)])
        assert result.counters().get("gating.gated", 0) == 0

    def test_gating_disabled_never_gates(self):
        config_kw = {}
        config = SystemConfig(
            num_procs=2, seed=0, gating=GatingConfig(enabled=False)
        )
        programs = [
            ThreadProgram(contended_counter(10), "a"),
            ThreadProgram(contended_counter(10), "b"),
        ]
        result = Machine(config, programs).run()
        c = result.counters()
        assert c.get("gating.gated", 0) == 0
        assert c["tx.aborts.conflict"] > 0  # conflicts happen, no gating

    def test_renewals_occur_under_repeated_same_site_commits(self):
        """Short same-site transactions in a loop: the aborter is back
        at the directory when the victim's timer expires -> renew."""
        trace = TraceRecorder(kinds=("gate",))
        _, result = run_programs(
            [contended_counter(40), contended_counter(40), contended_counter(40)],
            trace=trace,
            w0=8,
        )
        assert result.counters().get("gating.renewals", 0) > 0
        renew = trace.events("gate.renew")[0]
        assert renew.renew_count >= 1

    def test_gating_reduces_aborts_under_contention(self):
        base_cfg = SystemConfig(num_procs=4, seed=3)
        programs = lambda: [  # noqa: E731
            ThreadProgram(contended_counter(25), f"t{i}") for i in range(4)
        ]
        ungated = Machine(base_cfg.with_gating(False), programs()).run()
        gated = Machine(base_cfg.with_gating(True), programs()).run()
        assert gated.counters()["tx.aborts.conflict"] < (
            ungated.counters()["tx.aborts.conflict"]
        )

    def test_commit_resets_abort_counters(self):
        machine, _ = run_programs([contended_counter(10), contended_counter(10)])
        # after the run everyone committed last; counters must be reset
        for unit in machine.gating_units:
            for entry in unit.table:
                assert entry.abort_count == 0
                assert entry.renew_count == 0

    def test_all_entries_on_at_end(self):
        machine, _ = run_programs([contended_counter(10), contended_counter(10)])
        for unit in machine.gating_units:
            assert unit.table.off_procs() == []
        for proc in machine.procs:
            assert not proc.gated

    def test_or_circuit_extends_window(self):
        """The Fig. 2e circuit delay postpones the ungate check."""
        trace_fast = TraceRecorder(kinds=("gate",))
        trace_slow = TraceRecorder(kinds=("gate",))
        for or_cycles, trace in ((0, trace_fast), (30, trace_slow)):
            config = SystemConfig(
                num_procs=2,
                seed=0,
                gating=GatingConfig(enabled=True, w0=8, or_circuit_cycles=or_cycles),
            )
            programs = [
                ThreadProgram(contended_counter(10), "a"),
                ThreadProgram(contended_counter(10), "b"),
            ]
            Machine(config, programs, trace=trace).run()

        def first_window(trace):
            offs = {e.proc: e.time for e in trace.events("gate.off")}
            for on in trace.events("gate.turn_on"):
                if on.victim in offs:
                    return on.time - offs[on.victim]
            return None

        w_fast = first_window(trace_fast)
        w_slow = first_window(trace_slow)
        assert w_fast is not None and w_slow is not None
        assert w_slow > w_fast

    def test_deadlock_freedom_every_gate_has_wakeup(self):
        """Invariant 4: all gated processors eventually wake and the
        run completes (the run() returning at all is the main check)."""
        for seed in range(5):
            _, result = run_programs(
                [contended_counter(15), contended_counter(15),
                 contended_counter(15), contended_counter(15)],
                seed=seed,
            )
            c = result.counters()
            assert c["gating.wakeups"] == c["gating.gated"]

    def test_gated_processors_issue_no_requests(self):
        """A gated processor must not load/store (paper, Section V)."""
        trace = TraceRecorder(kinds=("gate",))
        machine, result = run_programs(
            [contended_counter(20), contended_counter(20)], trace=trace
        )
        # Reconstruct gated intervals per proc from the trace and check
        # the timeline never shows MISS/COMMIT inside them.
        events = sorted(
            trace.events("gate.off") + trace.events("gate.on"),
            key=lambda e: e.time,
        )
        gated_since: dict[int, int] = {}
        for event in events:
            if event.kind == "gate.off":
                gated_since[event.proc] = event.time
            else:
                start = gated_since.pop(event.proc, None)
                if start is None or event.time <= start:
                    continue
                timeline = result.timelines[event.proc]
                for seg in timeline.clipped_segments(start, event.time):
                    assert seg.state is ProcState.GATED


class TestCommittedVictimRenewal:
    """Regression: a timer chain outliving the victim's commit must end
    in a Turn-On, not a renewal.

    Stale-OFF recovery can let a victim resume — and commit, resetting
    its abort counter — while its gating timer chain is still in
    flight.  If the renewal check then found the aborter on the same
    transaction, `_renew` queried Eq. 8 with N_a = 0 and the run died
    with "gating window queried with no abort recorded" (first seen on
    the paper figure grid: yada, 16 procs, seed 0, W0 = 16).
    """

    def test_renew_after_commit_turns_on(self):
        from repro.exec.jobs import execute_job
        from repro.scenarios.spec import scenario

        spec = scenario("yada", scale="small", threads=16, seed=0,
                        gating=True, w0=16)
        result = execute_job(spec.to_job())
        assert result.commits > 0
        assert result.parallel_time > 0
