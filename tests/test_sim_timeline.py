"""State-timeline recording, clipping and tiling invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.timeline import Segment, StateTimeline, verify_tiling


def make(events, end, initial="A", start=0):
    tl = StateTimeline(initial, start=start)
    for t, s in events:
        tl.set_state(t, s)
    tl.finalize(end)
    return tl


class TestRecording:
    def test_single_segment(self):
        tl = make([], 10)
        assert tl.segments() == [Segment(0, 10, "A")]

    def test_basic_segments(self):
        tl = make([(3, "B"), (7, "C")], 10)
        assert tl.segments() == [
            Segment(0, 3, "A"),
            Segment(3, 7, "B"),
            Segment(7, 10, "C"),
        ]

    def test_same_state_is_noop(self):
        tl = make([(3, "A"), (5, "B"), (6, "B")], 10)
        assert tl.segments() == [Segment(0, 5, "A"), Segment(5, 10, "B")]

    def test_same_cycle_last_wins(self):
        tl = make([(4, "B"), (4, "C")], 10)
        assert tl.segments() == [Segment(0, 4, "A"), Segment(4, 10, "C")]

    def test_same_cycle_collapse_back_to_previous(self):
        # A -> B at t=4 then back to A at t=4: the B blip vanishes.
        tl = make([(4, "B"), (4, "A")], 10)
        assert tl.segments() == [Segment(0, 10, "A")]

    def test_rejects_time_travel(self):
        tl = StateTimeline("A")
        tl.set_state(5, "B")
        with pytest.raises(SimulationError):
            tl.set_state(3, "C")

    def test_rejects_recording_after_finalize(self):
        tl = make([], 10)
        with pytest.raises(SimulationError):
            tl.set_state(11, "B")

    def test_finalize_idempotent_same_end(self):
        tl = make([], 10)
        tl.finalize(10)
        assert tl.end == 10

    def test_finalize_conflicting_end_rejected(self):
        tl = make([], 10)
        with pytest.raises(SimulationError):
            tl.finalize(12)

    def test_finalize_before_last_change_rejected(self):
        tl = StateTimeline("A")
        tl.set_state(8, "B")
        with pytest.raises(SimulationError):
            tl.finalize(5)

    def test_current_state(self):
        tl = StateTimeline("A")
        assert tl.current_state == "A"
        tl.set_state(2, "B")
        assert tl.current_state == "B"


class TestQueries:
    def test_state_at(self):
        tl = make([(3, "B"), (7, "C")], 10)
        assert tl.state_at(0) == "A"
        assert tl.state_at(2) == "A"
        assert tl.state_at(3) == "B"  # segments are [start, end)
        assert tl.state_at(6) == "B"
        assert tl.state_at(7) == "C"
        assert tl.state_at(100) == "C"

    def test_state_at_before_start_rejected(self):
        tl = make([], 10, start=5)
        with pytest.raises(SimulationError):
            tl.state_at(4)

    def test_durations(self):
        tl = make([(3, "B"), (7, "A")], 10)
        assert tl.durations() == {"A": 6, "B": 4}

    def test_clipped_segments(self):
        tl = make([(3, "B"), (7, "C")], 10)
        assert tl.clipped_segments(2, 8) == [
            Segment(2, 3, "A"),
            Segment(3, 7, "B"),
            Segment(7, 8, "C"),
        ]

    def test_clip_empty_window(self):
        tl = make([(3, "B")], 10)
        assert tl.clipped_segments(5, 5) == []

    def test_clip_invalid_window(self):
        tl = make([], 10)
        with pytest.raises(SimulationError):
            tl.clipped_segments(8, 2)

    def test_durations_windowed(self):
        tl = make([(3, "B"), (7, "A")], 10)
        assert tl.durations(2, 8) == {"A": 2, "B": 4}


class TestTiling:
    def test_verify_tiling_accepts_complete(self):
        tls = [make([(3, "B")], 10), make([], 10)]
        verify_tiling(tls, 0, 10)
        verify_tiling(tls, 2, 9)

    def test_verify_tiling_empty_window(self):
        verify_tiling([make([], 10)], 4, 4)


@st.composite
def timeline_ops(draw):
    times = draw(
        st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=30)
    )
    times = sorted(times)
    states = draw(
        st.lists(
            st.sampled_from(["A", "B", "C", "D"]),
            min_size=len(times),
            max_size=len(times),
        )
    )
    end = draw(st.integers(min_value=200, max_value=300))
    return list(zip(times, states)), end


@given(timeline_ops())
def test_segments_tile_and_sum(ops_end):
    """Segments always tile [start, end) and durations sum to the span."""
    ops, end = ops_end
    tl = make(ops, end)
    segs = tl.segments()
    assert segs[0].start == 0
    assert segs[-1].end == end
    for a, b in zip(segs, segs[1:]):
        assert a.end == b.start
        assert a.state != b.state  # maximality
    assert sum(s.duration for s in segs) == end
    assert sum(tl.durations().values()) == end


@given(timeline_ops(), st.integers(0, 300), st.integers(0, 300))
def test_clip_consistency(ops_end, a, b):
    """Clipped durations equal state_at-integration over the window."""
    ops, end = ops_end
    lo, hi = min(a, b), max(a, b)
    hi = min(hi, end)
    lo = min(lo, hi)
    tl = make(ops, end)
    clipped = tl.clipped_segments(lo, hi)
    assert sum(s.duration for s in clipped) == hi - lo
    for seg in clipped:
        assert tl.state_at(seg.start) == seg.state
