"""Momentum-based contention management (the paper's future work)."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.cm.momentum import MomentumCM
from repro.cm.registry import create_cm
from repro.config import GatingConfig, SystemConfig
from repro.errors import ConfigError
from repro.harness.runner import run_workload, workload


class TestMomentumWindows:
    def test_zero_momentum_degrades_to_eq8(self):
        cm = MomentumCM(w0=8)
        assert cm.gating_window_ex(1, 0, momentum=0) == cm.gating_window(1, 0)

    def test_window_scales_with_momentum(self):
        cm = MomentumCM(w0=8, momentum_fraction=0.5)
        low = cm.gating_window_ex(1, 0, momentum=40)
        high = cm.gating_window_ex(1, 0, momentum=400)
        assert high > low
        assert high == 200  # 400 * 0.5

    def test_minimum_window_floor(self):
        cm = MomentumCM(w0=8)
        # tiny momentum still yields at least 2*W0
        assert cm.gating_window_ex(1, 0, momentum=2) == 16

    def test_cap(self):
        cm = MomentumCM(w0=8, cap=100)
        assert cm.gating_window_ex(1, 0, momentum=10_000) == 100

    def test_renewals_escalate(self):
        cm = MomentumCM(w0=8, cap=100_000)
        w0r = cm.gating_window_ex(1, 0, momentum=100)
        w2r = cm.gating_window_ex(1, 2, momentum=100)
        assert w2r == 2 * w0r  # staircase_term(2) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            MomentumCM(w0=0)
        with pytest.raises(ConfigError):
            MomentumCM(momentum_fraction=0)
        with pytest.raises(ConfigError):
            MomentumCM(w0=8, cap=8)
        with pytest.raises(ConfigError):
            MomentumCM().gating_window(0, 0)

    @given(st.integers(1, 255), st.integers(0, 64), st.integers(0, 100_000))
    def test_bounds_hold_everywhere(self, na, nr, momentum):
        cm = MomentumCM(w0=8, cap=4096)
        window = cm.gating_window_ex(na, nr, momentum)
        assert 1 <= window <= 4096

    def test_registry(self):
        cm = create_cm(GatingConfig(contention_manager="momentum", w0=16))
        assert isinstance(cm, MomentumCM)
        assert cm.w0 == 16


class TestMomentumEndToEnd:
    def test_runs_and_gates(self):
        config = dataclasses.replace(
            SystemConfig(num_procs=4, seed=6),
            gating=GatingConfig(enabled=True, w0=8,
                                contention_manager="momentum"),
        )
        result = run_workload(
            workload("counter", scale="tiny", seed=6), config,
            check_serial=True,
        )
        assert result.counters.get("gating.gated", 0) > 0
        assert result.commits == 40

    def test_momentum_windows_longer_for_long_txs(self):
        """yada's long transactions must produce longer gating windows
        under the momentum policy than under Eq. 8."""
        results = {}
        for cm_name in ("gating-aware", "momentum"):
            config = dataclasses.replace(
                SystemConfig(num_procs=4, seed=6),
                gating=GatingConfig(enabled=True, w0=8,
                                    contention_manager=cm_name),
            )
            result = run_workload(
                workload("yada", scale="tiny", seed=6), config
            )
            hist = result.machine_result.stats.histograms().get("gating.window")
            results[cm_name] = hist.mean if hist is not None else 0.0
        if results["gating-aware"] and results["momentum"]:
            assert results["momentum"] > results["gating-aware"]
