"""repro.exec: job digests, dedup, parallel bit-equality, result cache."""

from __future__ import annotations

import json

import pytest

from repro.config import SystemConfig
from repro.errors import ExecutionError
from repro.exec.executor import Executor
from repro.exec.jobs import SCHEMA_VERSION, ExecResult, RunJob, execute_job
from repro.exec.progress import ConsoleProgress, ProgressListener
from repro.exec.serialize import (
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.exec.store import ResultStore
from repro.harness.runner import run_workload, workload
from repro.harness.sweep import w0_sensitivity

TINY = SystemConfig(num_procs=2, seed=1)


def tiny_job(name: str = "counter", *, gated: bool = True, w0: int = 8,
             seed: int = 1, procs: int = 2, cm: str = "gating-aware") -> RunJob:
    config = SystemConfig(num_procs=procs, seed=seed).with_gating(
        gated, w0=w0, contention_manager=cm
    )
    return RunJob(workload(name, scale="tiny", seed=seed), config)


class TestDigests:
    def test_digest_is_stable(self):
        assert tiny_job().digest == tiny_job().digest

    def test_digest_distinguishes_every_axis(self):
        base = tiny_job()
        variants = [
            tiny_job(seed=2),
            tiny_job(procs=4),
            tiny_job(w0=16),
            tiny_job(gated=False),
            tiny_job("intruder"),
        ]
        digests = {base.digest} | {v.digest for v in variants}
        assert len(digests) == 1 + len(variants)

    def test_power_model_is_part_of_the_digest(self):
        from repro.power.model import PowerModel

        a = RunJob(workload("counter", scale="tiny"), TINY)
        b = RunJob(workload("counter", scale="tiny"), TINY,
                   power=PowerModel(gated=0.25))
        assert a.digest != b.digest

    def test_ungated_digest_collapses_w0_for_w0_independent_cm(self):
        """One shared ungated baseline serves a whole W0 sweep."""
        a = tiny_job(gated=False, w0=1)
        b = tiny_job(gated=False, w0=32)
        assert a.digest == b.digest
        # ...and the collapse is empirically sound: identical numbers.
        ra, rb = execute_job(a), execute_job(b)
        da, db = result_to_dict(ra), result_to_dict(rb)
        da.pop("config"), db.pop("config")  # echoes the submitted w0
        assert da == db

    def test_ungated_digest_keeps_w0_for_backoff_cms(self):
        """Exponential back-off derives its ungated delay from w0."""
        a = tiny_job(gated=False, w0=2, cm="exponential")
        b = tiny_job(gated=False, w0=16, cm="exponential")
        assert a.digest != b.digest

    def test_gated_digest_never_collapses_w0(self):
        assert tiny_job(w0=4).digest != tiny_job(w0=16).digest


class TestSerialization:
    def test_config_roundtrip(self):
        config = TINY.with_gating(True, w0=3)
        assert config_from_dict(config_to_dict(config)) == config

    def test_result_roundtrip_is_exact(self):
        result = execute_job(tiny_job())
        via_json = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert via_json == result
        assert via_json.energy.total == result.energy.total

    def test_exec_result_mirrors_run_result(self):
        job = tiny_job()
        direct = run_workload(job.spec, job.config, power_model=job.power)
        condensed = execute_job(job)
        assert condensed.parallel_time == direct.parallel_time
        assert condensed.end_cycle == direct.end_cycle
        assert condensed.energy.total == direct.energy.total
        assert condensed.counters == direct.counters
        assert condensed.commits == direct.commits
        assert condensed.aborts == direct.aborts
        assert condensed.summary() == direct.summary()


class TestExecutor:
    GRID = [
        tiny_job("counter"),
        tiny_job("counter", gated=False),
        tiny_job("intruder"),
        tiny_job("intruder", gated=False),
    ]

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = Executor(jobs=1).run(self.GRID)
        parallel = Executor(jobs=2).run(self.GRID)
        assert [result_to_dict(r) for r in serial] == [
            result_to_dict(r) for r in parallel
        ]

    def test_results_keep_submission_order(self):
        results = Executor(jobs=2).run(self.GRID)
        assert [r.workload for r in results] == [
            "counter", "counter", "intruder", "intruder"
        ]
        assert [r.config.gating.enabled for r in results] == [
            True, False, True, False
        ]

    def test_in_batch_dedup(self):
        exe = Executor()
        results = exe.run([self.GRID[0]] * 3 + [self.GRID[1]])
        assert exe.last_report.total == 4
        assert exe.last_report.executed == 2
        assert exe.last_report.deduplicated == 2
        assert result_to_dict(results[0]) == result_to_dict(results[1])

    def test_baseline_dedup_across_w0_points(self):
        """Ungated baselines at different W0 collapse to one execution."""
        exe = Executor()
        jobs = [tiny_job(gated=False, w0=w0) for w0 in (1, 4, 32)]
        results = exe.run(jobs)
        assert exe.last_report.executed == 1
        # every caller still sees the config it submitted
        assert [r.config.gating.w0 for r in results] == [1, 4, 32]

    def test_worker_failure_is_wrapped(self):
        bad = RunJob(workload("no-such-workload", scale="tiny"), TINY)
        with pytest.raises(ExecutionError, match="no-such-workload"):
            Executor(jobs=2).run([bad, tiny_job()])

    def test_negative_worker_count_rejected(self):
        with pytest.raises(ExecutionError):
            Executor(jobs=-1)

    def test_progress_hooks_fire(self, capsys):
        import sys

        exe = Executor(progress=ConsoleProgress(stream=sys.stderr))
        exe.run([self.GRID[0], self.GRID[0]])
        err = capsys.readouterr().err
        assert "2 job(s) -> 1 unique" in err
        assert "executed 1 of 2 submitted" in err

    def test_null_progress_is_silent(self, capsys):
        Executor(progress=ProgressListener()).run([self.GRID[0]])
        assert capsys.readouterr().err == ""


class TestResultStore:
    def test_cache_hit_miss_roundtrip(self, tmp_path):
        job = tiny_job()
        first = Executor(store=ResultStore(tmp_path))
        fresh = first.run([job])
        assert first.last_report.executed == 1

        second = Executor(store=ResultStore(tmp_path))
        cached = second.run([job])
        assert second.last_report.executed == 0
        assert second.last_report.cache_hits == 1
        assert result_to_dict(cached[0]) == result_to_dict(fresh[0])

    def test_changed_parameters_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        Executor(store=store).run([tiny_job()])
        exe = Executor(store=store)
        exe.run([tiny_job(seed=2)])
        assert exe.last_report.executed == 1

    def test_invalidation_forces_reexecution(self, tmp_path):
        job = tiny_job()
        store = ResultStore(tmp_path)
        Executor(store=store).run([job])
        assert store.invalidate(job.digest)
        assert job.digest not in store
        exe = Executor(store=store)
        exe.run([job])
        assert exe.last_report.executed == 1
        # tombstone survives a reload of the same directory
        assert tiny_job().digest in ResultStore(tmp_path)

    def test_refresh_skips_reads_but_writes(self, tmp_path):
        job = tiny_job()
        store = ResultStore(tmp_path)
        Executor(store=store).run([job])
        exe = Executor(store=store, refresh=True)
        exe.run([job])
        assert exe.last_report.executed == 1
        assert len(store) == 1

    def test_corrupt_and_foreign_schema_lines_skipped(self, tmp_path):
        job = tiny_job()
        store = ResultStore(tmp_path)
        Executor(store=store).run([job])
        with store.path.open("a") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({"digest": "x", "schema": SCHEMA_VERSION + 1,
                                 "result": {}}) + "\n")
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.stats().skipped_records == 2
        assert reloaded.get(job.digest) is not None

    def test_clear_and_compact(self, tmp_path):
        store = ResultStore(tmp_path)
        Executor(store=store).run([tiny_job(), tiny_job(gated=False)])
        store.invalidate(tiny_job().digest)
        store.compact()
        assert len(ResultStore(tmp_path)) == 1
        assert store.clear() == 1
        assert len(ResultStore(tmp_path)) == 0

    def test_completed_results_survive_batch_failure(self, tmp_path):
        """Write-through: work done before a failing job is not lost."""
        store = ResultStore(tmp_path)
        good = tiny_job()
        bad = RunJob(workload("no-such-workload", scale="tiny"), TINY)
        with pytest.raises(ExecutionError):
            Executor(store=store).run([good, bad])
        assert good.digest in store
        exe = Executor(store=ResultStore(tmp_path))
        exe.run([good])
        assert exe.last_report.cache_hits == 1

    def test_stats_summary_renders(self, tmp_path):
        store = ResultStore(tmp_path)
        Executor(store=store).run([tiny_job()])
        text = store.stats().summary()
        assert "1 entries" in text
        assert f"schema v{SCHEMA_VERSION}" in text

    def test_prune_drops_dead_lines_keeps_live_results(self, tmp_path):
        store = ResultStore(tmp_path)
        keep, drop = tiny_job(), tiny_job(gated=False)
        Executor(store=store).run([keep, drop])
        store.invalidate(drop.digest)  # dead record + tombstone line
        with store.path.open("a") as fh:
            fh.write("{crashed mid-append\n")
            fh.write(json.dumps({"digest": "old", "schema": SCHEMA_VERSION - 1,
                                 "result": {}}) + "\n")
        store = ResultStore(tmp_path)
        bytes_before = store.path.stat().st_size
        report = store.prune()
        # 5 lines before (2 results + tombstone + corrupt + stale), 1 live
        assert report.lines_dropped == 4
        assert report.entries == 1
        assert report.bytes_reclaimed == bytes_before - store.path.stat().st_size
        assert "pruned 4 dead line(s)" in report.summary()
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.stats().skipped_records == 0
        assert reloaded.get(keep.digest) is not None

    def test_prune_on_clean_store_is_a_no_op(self, tmp_path):
        store = ResultStore(tmp_path)
        Executor(store=store).run([tiny_job()])
        content = store.path.read_text()
        report = store.prune()
        assert report.lines_dropped == 0
        assert report.bytes_reclaimed == 0
        assert store.path.read_text() == content


def _hammer_store(directory: str, worker: int, payload: dict, n: int) -> None:
    """Child-process entry point: append *n* distinct records to one store."""
    store = ResultStore(directory)
    result = result_from_dict(payload)
    for i in range(n):
        store.put(f"{'0' * 40}worker{worker:04d}rec{i:08d}", result)
    store.close()


class TestStoreConcurrency:
    """Regression: concurrent appends must never tear/lose records."""

    def test_multiprocess_puts_lose_nothing(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        payload = result_to_dict(execute_job(tiny_job()))
        workers, per_worker = 4, 25
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_hammer_store, str(tmp_path), w, payload, per_worker)
                for w in range(workers)
            ]
            for future in futures:
                future.result()
        reloaded = ResultStore(tmp_path)
        # Before advisory locking, interleaved appends tore JSONL lines
        # that load() silently dropped as skipped records.
        assert reloaded.stats().skipped_records == 0
        assert len(reloaded) == workers * per_worker

    def test_clear_resets_skipped_counter(self, tmp_path):
        """clear() must not report stale skipped counts afterwards."""
        store = ResultStore(tmp_path)
        Executor(store=store).run([tiny_job()])
        with store.path.open("a") as fh:
            fh.write("{torn line\n")
        store = ResultStore(tmp_path)
        assert store.stats().skipped_records == 1
        store.clear()
        assert store.stats().skipped_records == 0
        # ...and the truncated file really is free of the dead line
        assert ResultStore(tmp_path).stats().skipped_records == 0

    def test_contains_counts_hits_and_misses(self, tmp_path):
        """`in` and get() share one accounting contract (exec-status)."""
        job = tiny_job()
        store = ResultStore(tmp_path)
        Executor(store=store).run([job])
        probe = ResultStore(tmp_path)
        assert job.digest in probe
        assert "deadbeef" not in probe
        assert (probe.hits, probe.misses) == (1, 1)
        probe.get(job.digest)
        assert (probe.hits, probe.misses) == (2, 1)
        # len()/labels()/records()/stats() never touch the counters
        len(probe), list(probe.labels()), list(probe.records()), probe.stats()
        assert (probe.hits, probe.misses) == (2, 1)


class TestReplicatePacks:
    """Seed-family packing: identical results, fewer pool dispatches."""

    def seed_family(self, count: int = 4) -> list[RunJob]:
        return [tiny_job(seed=seed) for seed in range(1, count + 1)]

    def test_replicate_key_groups_only_seed_variants(self):
        from repro.exec.jobs import replicate_key

        family = {replicate_key(job) for job in self.seed_family()}
        assert len(family) == 1
        strangers = [
            tiny_job(procs=4),
            tiny_job(w0=16),
            tiny_job(gated=False),
            tiny_job("intruder"),
        ]
        assert all(replicate_key(job) not in family for job in strangers)

    def test_pack_results_match_per_process_bit_for_bit(self):
        jobs = self.seed_family() + [tiny_job("intruder")]
        packed = Executor(jobs=2, packs=True).run(jobs)
        unpacked = Executor(jobs=2, packs=False).run(jobs)
        serial = Executor(jobs=1).run(jobs)
        assert [result_to_dict(r) for r in packed] == [
            result_to_dict(r) for r in unpacked
        ] == [result_to_dict(r) for r in serial]

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_pack_and_per_process_stores_are_identical(self, tmp_path, backend):
        """The store never sees packs: same digests, same records."""
        jobs = self.seed_family()

        def normalized(directory):
            store = ResultStore(directory, backend=backend)
            records = {}
            for digest, _label in store.labels():
                records[digest] = result_to_dict(store.get(digest))
            store.close()
            return records

        Executor(jobs=2, packs=True,
                 store=ResultStore(tmp_path / "on", backend=backend)).run(jobs)
        Executor(jobs=2, packs=False,
                 store=ResultStore(tmp_path / "off", backend=backend)).run(jobs)
        on, off = normalized(tmp_path / "on"), normalized(tmp_path / "off")
        assert sorted(on) == sorted(off)
        assert on == off

    def test_pack_identity_under_shard(self, tmp_path):
        """Sharding partitions by job digest, so packs cannot change it."""
        from repro.scenarios.runner import Shard

        jobs = self.seed_family(6)
        shard = Shard(index=1, count=2)
        owned = [job for job in jobs if shard.owns(job.digest)]
        assert 0 < len(owned) < len(jobs)  # a real partition
        packed = Executor(jobs=2, packs=True).run(owned)
        unpacked = Executor(jobs=2, packs=False).run(owned)
        assert [result_to_dict(r) for r in packed] == [
            result_to_dict(r) for r in unpacked
        ]

    def test_pack_member_failure_spares_siblings(self, tmp_path, monkeypatch):
        """One bad seed fails its job; the rest of the pack still lands."""
        import repro.exec.executor as executor_mod

        # Force everything into one pack so the bad job shares a unit
        # with the good ones.
        monkeypatch.setattr(
            executor_mod, "replicate_key", lambda job: "one-family"
        )
        good = self.seed_family(2)
        bad = RunJob(workload("no-such-workload", scale="tiny"), TINY)
        store = ResultStore(tmp_path)
        with pytest.raises(ExecutionError, match="no-such-workload"):
            Executor(jobs=2, packs=True, store=store).run(good + [bad])
        assert all(job.digest in store for job in good)
        assert bad.digest not in store

    def test_execute_pack_isolates_member_exceptions(self):
        from repro.exec.jobs import execute_pack

        bad = RunJob(workload("no-such-workload", scale="tiny"), TINY)
        outcomes, stats = execute_pack([bad, tiny_job()])
        assert outcomes[0].result is None
        assert "no-such-workload" in outcomes[0].error
        assert outcomes[0].traceback
        assert outcomes[1].result is not None and outcomes[1].error is None
        # the failed member dropped the cached machine, and the good
        # member built fresh after it — nothing was reset-reused
        assert stats.reset_reuses == 0

    def test_dispatch_units_split_to_fill_workers(self):
        jobs = self.seed_family(8)
        pending = [(job.digest, job) for job in jobs]
        exe = Executor(jobs=4, packs=True)
        units = exe._dispatch_units(pending, workers=4)
        assert [len(unit) for unit in units] == [2, 2, 2, 2]
        # flattened order covers exactly the pending jobs
        flat = [digest for unit in units for digest, _job in unit]
        assert sorted(flat) == sorted(digest for digest, _job in pending)
        # packs off: one singleton per job, in submission order
        exe_off = Executor(jobs=4, packs=False)
        assert [len(u) for u in exe_off._dispatch_units(pending, 4)] == [1] * 8

    def test_no_packs_environment_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PACKS", "1")
        assert Executor().packs is False
        monkeypatch.setenv("REPRO_NO_PACKS", "0")
        assert Executor().packs is True
        monkeypatch.delenv("REPRO_NO_PACKS")
        assert Executor().packs is True
        # an explicit argument always wins over the environment
        monkeypatch.setenv("REPRO_NO_PACKS", "1")
        assert Executor(packs=True).packs is True


class TestSweepIntegration:
    """The acceptance criterion: a cached sweep re-runs nothing."""

    def test_w0_sweep_is_fully_cached_on_second_run(self, tmp_path):
        spec = workload("counter", scale="tiny", seed=2)
        config = SystemConfig(num_procs=2, seed=2)
        w0_values = (2, 8)

        exe1 = Executor(store=ResultStore(tmp_path))
        first = w0_sensitivity(spec, config, w0_values, executor=exe1)
        assert exe1.last_report.executed == 1 + len(w0_values)

        exe2 = Executor(jobs=2, store=ResultStore(tmp_path))
        second = w0_sensitivity(spec, config, w0_values, executor=exe2)
        assert exe2.last_report.executed == 0
        assert exe2.last_report.cache_hits == 1 + len(w0_values)
        assert first == second

    def test_sweep_matches_legacy_serial_path(self):
        """Executor-backed sweep == direct run_workload loop, exactly."""
        spec = workload("counter", scale="tiny", seed=2)
        config = SystemConfig(num_procs=2, seed=2)
        curves = w0_sensitivity(spec, config, (4, 16), executor=Executor(jobs=2))

        baseline = run_workload(spec, config.with_gating(False))
        for w0 in (4, 16):
            gated = run_workload(spec, config.with_gating(True).with_w0(w0))
            point = curves[w0]
            assert point["n1"] == float(baseline.parallel_time)
            assert point["n2"] == float(gated.parallel_time)
            assert point["speedup"] == (
                baseline.parallel_time / gated.parallel_time
            )
            assert point["energy_reduction"] == (
                baseline.energy.total / gated.energy.total
            )
